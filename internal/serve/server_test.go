package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Test program sources covering every outcome class.
const (
	// validSrc runs clean and prints 42.
	validSrc = `func main() { print(42); }`

	// spinSrc loops forever while committing a shared write every
	// iteration, so it makes observable progress (no watchdog) until a
	// step quota or wall-clock deadline stops it.
	spinSrc = `
shared int beat[1] @ 900;
func main() {
	int n = 0;
	while (1) {
		n += 1;
		beat[0] = n;
	}
}
`
	// faultSrc writes through a data-dependent index with duplicate
	// values: clean under static CREW analysis (the values are unknowable
	// statically), but the runtime discipline cross-checker catches the
	// write-write conflict — a program fault, not a quota or a deadline.
	faultSrc = `
shared int d[4] @ 100 = {0, 0, 1, 1};
shared int out[4] @ 200;
func main() {
	#4;
	out[d[tid]] = tid;
}
`

	// vetBadSrc is a CREW discipline violation (a comparison index takes
	// two values over eight threads, so threads collide on a write).
	vetBadSrc = `
shared int a[2] @ 100;
func main() {
	#8;
	a[tid == 3] = tid;
}
`
	// parseBadSrc does not parse.
	parseBadSrc = `func main( {`

	// thickSrc needs thickness 64 — over the caged tenant's quota of 8.
	thickSrc = `
shared int a[64] @ 100;
func main() {
	#64;
	a[tid] = tid;
}
`
)

// cagedLimits is a tight tenant envelope used to provoke quota outcomes.
func cagedLimits() Limits {
	return Limits{MaxSteps: 300, MaxThickness: 8, MaxWallClock: 5 * time.Second}
}

// slowLimits allows a huge step budget but a tiny wall clock, so spinSrc
// reliably hits the deadline before the step quota.
func slowLimits() Limits {
	return Limits{MaxSteps: 1 << 40, MaxWallClock: 100 * time.Millisecond}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one /run request and decodes the response envelope.
func post(t *testing.T, ts *httptest.Server, tenant string, req runRequest) (int, http.Header, runResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, ts, tenant, body)
}

func postRaw(t *testing.T, ts *httptest.Server, tenant string, body []byte) (int, http.Header, runResponse) {
	t.Helper()
	hreq, err := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	hres, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var resp runResponse
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return hres.StatusCode, hres.Header, resp
}

// settleGoroutines polls until the process is back to at most want
// goroutines, dumping stacks on timeout. Callers capture want after a
// warm-up run, because the machine's worker pools live for the process.
func settleGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: want <= %d, have %d\n%s", want, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRunValidProgram(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, _, resp := post(t, ts, "", runRequest{Name: "ok", Source: validSrc})
	if status != http.StatusOK || resp.Outcome != outcomeOK {
		t.Fatalf("status %d outcome %q (%s)", status, resp.Outcome, resp.Error)
	}
	if len(resp.Outputs) != 1 || len(resp.Outputs[0].Values) != 1 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("outputs = %+v, want one [42]", resp.Outputs)
	}
	if resp.Steps <= 0 || resp.Cycles <= 0 {
		t.Fatalf("missing statistics: %+v", resp)
	}
	if len(resp.StageCycles) == 0 {
		t.Fatal("missing per-stage cycle attribution")
	}
}

func TestRunPeekMemory(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, _, resp := post(t, ts, "", runRequest{
		Source: `shared int a[4] @ 300; func main() { #4; a[tid] = tid * 7; }`,
		Peek:   []peekRange{{Addr: 300, N: 4}},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, resp.Error)
	}
	if len(resp.Memory) != 1 || fmt.Sprint(resp.Memory[0].Values) != "[0 7 14 21]" {
		t.Fatalf("memory = %+v", resp.Memory)
	}
}

// TestOutcomeStatusMapping drives one request per outcome class and checks
// the HTTP status and outcome string of each.
func TestOutcomeStatusMapping(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Tenants: map[string]Limits{"caged": cagedLimits(), "slow": slowLimits()},
	})
	s.hookLoaded = func(tenant, name string) {
		if name == "bomb" {
			panic("injected test panic")
		}
	}

	cases := []struct {
		name    string
		tenant  string
		req     runRequest
		raw     []byte // overrides req when set
		status  int
		outcome string
	}{
		{name: "ok", req: runRequest{Source: validSrc}, status: 200, outcome: outcomeOK},
		{name: "bad-json", raw: []byte(`{"source": 12`), status: 400, outcome: outcomeBadRequest},
		{name: "empty-source", req: runRequest{}, status: 400, outcome: outcomeBadRequest},
		{name: "parse-error", req: runRequest{Source: parseBadSrc}, status: 400, outcome: outcomeCompileError},
		{name: "vet-rejected", req: runRequest{Source: vetBadSrc}, status: 422, outcome: outcomeVetRejected},
		{name: "bad-variant", req: runRequest{Source: validSrc, Variant: "nope"}, status: 400, outcome: outcomeBadRequest},
		{name: "bad-discipline", req: runRequest{Source: validSrc, Discipline: "nope"}, status: 400, outcome: outcomeBadRequest},
		{name: "shape-cap", req: runRequest{Source: validSrc, Groups: 4096}, status: 400, outcome: outcomeBadRequest},
		{name: "peek-range", req: runRequest{Source: validSrc, Peek: []peekRange{{Addr: -1, N: 4}}}, status: 400, outcome: outcomeBadRequest},
		// On the TCF variant the cost analyzer resolves both programs, so
		// the quota violation is proven at admission (412, no machine
		// pooled); on balanced — a step shape the analyzer does not model —
		// the same programs are admitted and die on the runtime quota (403).
		{name: "steps-quota-predicted", tenant: "caged", req: runRequest{Source: spinSrc}, status: 412, outcome: outcomePredictedQuota},
		{name: "steps-quota-runtime", tenant: "caged", req: runRequest{Source: spinSrc, Variant: "balanced"}, status: 403, outcome: outcomeQuota},
		{name: "thickness-quota-predicted", tenant: "caged", req: runRequest{Source: thickSrc}, status: 412, outcome: outcomePredictedQuota},
		{name: "thickness-quota-runtime", tenant: "caged", req: runRequest{Source: thickSrc, Variant: "balanced"}, status: 403, outcome: outcomeQuota},
		{name: "memory-quota", tenant: "caged", req: runRequest{Source: validSrc, SharedWords: 1 << 21}, status: 403, outcome: outcomeQuota},
		{name: "deadline", tenant: "slow", req: runRequest{Source: spinSrc}, status: 408, outcome: outcomeDeadline},
		{name: "runtime-discipline-fault", req: runRequest{Source: faultSrc, Discipline: "crew"}, status: 409, outcome: outcomeRuntimeFault},
		{name: "panic", req: runRequest{Name: "bomb", Source: validSrc}, status: 500, outcome: outcomePanic},
		{name: "after-panic", req: runRequest{Source: validSrc}, status: 200, outcome: outcomeOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var status int
			var resp runResponse
			if tc.raw != nil {
				status, _, resp = postRaw(t, ts, tc.tenant, tc.raw)
			} else {
				status, _, resp = post(t, ts, tc.tenant, tc.req)
			}
			if status != tc.status || resp.Outcome != tc.outcome {
				t.Fatalf("status %d outcome %q (%s), want %d %q",
					status, resp.Outcome, resp.Error, tc.status, tc.outcome)
			}
			if tc.outcome == outcomeVetRejected && !strings.Contains(resp.Diagnostics, "concurrent-write") {
				t.Fatalf("vet rejection carries no diagnostics: %+v", resp)
			}
		})
	}

	// The panic was isolated: its machine was discarded, not pooled.
	if m := s.Metrics(); m.Pool.Discards == 0 {
		t.Fatalf("panic did not discard the poisoned machine: %+v", m.Pool)
	}
}

// TestSourceSizeCap: oversized programs bounce with 413 both via the JSON
// field check and via the raw body reader cap.
func TestSourceSizeCap(t *testing.T) {
	_, ts := newTestServer(t, Options{
		DefaultLimits: Limits{MaxSourceBytes: 256},
	})
	big := `func main() { print(42); } // ` + strings.Repeat("x", 512)
	status, _, resp := post(t, ts, "", runRequest{Source: big})
	if status != http.StatusRequestEntityTooLarge || resp.Outcome != outcomeTooLarge {
		t.Fatalf("status %d outcome %q", status, resp.Outcome)
	}
	raw := append([]byte(`{"junk":"`), bytes.Repeat([]byte("y"), 8192)...)
	raw = append(raw, []byte(`","source":"func main() {}"}`)...)
	status, _, resp = postRaw(t, ts, "", raw)
	if status != http.StatusRequestEntityTooLarge || resp.Outcome != outcomeTooLarge {
		t.Fatalf("raw body: status %d outcome %q", status, resp.Outcome)
	}
}

// TestTenantConcurrencyCap: a tenant at its in-flight cap gets 429 while
// other tenants keep running.
func TestTenantConcurrencyCap(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		MaxConcurrent: 4,
		Tenants:       map[string]Limits{"t1": {MaxInFlight: 1}},
	})
	s.hookLoaded = func(tenant, name string) {
		if name == "block" {
			<-release
		}
	}

	done := make(chan runResponse, 1)
	go func() {
		_, _, resp := post(t, ts, "t1", runRequest{Name: "block", Source: validSrc})
		done <- resp
	}()
	waitFor(t, func() bool { return s.running.Load() == 1 })

	status, hdr, resp := post(t, ts, "t1", runRequest{Source: validSrc})
	if status != http.StatusTooManyRequests || resp.Outcome != outcomeTenantBusy {
		t.Fatalf("status %d outcome %q", status, resp.Outcome)
	}
	if _, ok := RetryAfter(hdr); !ok {
		t.Fatal("tenant-busy response has no Retry-After")
	}
	if status, _, resp := post(t, ts, "t2", runRequest{Source: validSrc}); status != 200 {
		t.Fatalf("other tenant blocked: %d %q", status, resp.Outcome)
	}
	close(release)
	if resp := <-done; resp.Outcome != outcomeOK {
		t.Fatalf("blocked run finished %q", resp.Outcome)
	}
}

// TestLoadShedding saturates a one-slot server: the queue admits exactly
// MaxQueue waiters; everyone else is shed immediately with 429+Retry-After,
// and queued waiters are shed after QueueWait.
func TestLoadShedding(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     200 * time.Millisecond,
	})
	s.hookLoaded = func(tenant, name string) {
		if name == "block" {
			<-release
		}
	}

	blocked := make(chan runResponse, 1)
	go func() {
		_, _, resp := post(t, ts, "a", runRequest{Name: "block", Source: validSrc})
		blocked <- resp
	}()
	waitFor(t, func() bool { return s.running.Load() == 1 })

	queued := make(chan runResponse, 1)
	go func() {
		_, _, resp := post(t, ts, "b", runRequest{Source: validSrc})
		queued <- resp
	}()
	waitFor(t, func() bool { return s.queued.Load() == 1 })

	// The queue is full: an immediate shed.
	status, hdr, resp := post(t, ts, "c", runRequest{Source: validSrc})
	if status != http.StatusTooManyRequests || resp.Outcome != outcomeShed {
		t.Fatalf("status %d outcome %q", status, resp.Outcome)
	}
	if _, ok := RetryAfter(hdr); !ok {
		t.Fatal("shed response has no Retry-After")
	}

	// The queued waiter gives up after QueueWait and is shed too.
	if resp := <-queued; resp.Outcome != outcomeShed {
		t.Fatalf("queued waiter finished %q, want shed", resp.Outcome)
	}
	close(release)
	if resp := <-blocked; resp.Outcome != outcomeOK {
		t.Fatalf("blocked run finished %q", resp.Outcome)
	}
	m := s.Metrics()
	if m.Outcomes[outcomeShed] != 2 || m.Outcomes[outcomeOK] != 1 {
		t.Fatalf("outcomes: %+v", m.Outcomes)
	}
}

// TestDrain: draining stops admission with 503, cancels in-flight runs past
// the drain deadline (also 503), flips /healthz, and leaks nothing.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Tenants: map[string]Limits{"slow": {MaxSteps: 1 << 40, MaxWallClock: 30 * time.Second}},
	})

	// Warm-up: populate the machine worker pools, then fix the goroutine
	// baseline the drained server must return to.
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc}); status != 200 {
		t.Fatalf("warm-up: %d %q", status, resp.Outcome)
	}
	baseline := runtime.NumGoroutine()

	inflight := make(chan runResponse, 1)
	go func() {
		_, _, resp := post(t, ts, "slow", runRequest{Source: spinSrc})
		inflight <- resp
	}()
	waitFor(t, func() bool { return s.running.Load() == 1 })

	drained := make(chan struct{})
	go func() {
		s.Drain(100 * time.Millisecond)
		close(drained)
	}()
	waitFor(t, s.Draining)

	status, _, resp := post(t, ts, "", runRequest{Source: validSrc})
	if status != http.StatusServiceUnavailable || resp.Outcome != outcomeDraining {
		t.Fatalf("admission during drain: %d %q", status, resp.Outcome)
	}

	// The in-flight run is canceled at the drain deadline and reported as
	// a drain casualty, not a client timeout.
	if resp := <-inflight; resp.Outcome != outcomeDraining {
		t.Fatalf("in-flight run finished %q, want draining", resp.Outcome)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return")
	}
	s.Drain(time.Second) // idempotent

	hres, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d", hres.StatusCode)
	}

	ts.Close()
	settleGoroutines(t, baseline)
}

// TestAdversarialLoad is the acceptance scenario: concurrent clients mixing
// valid, quota-exceeding, vet-rejected, deadline-bound and panic-inducing
// programs against a small server. Every response must map to that program
// class's status (or an admission 429 under load), the metrics must account
// for every request, and the drained server must leak nothing.
func TestAdversarialLoad(t *testing.T) {
	s, ts := newTestServer(t, Options{
		MaxConcurrent: 2,
		MaxQueue:      4,
		QueueWait:     5 * time.Second,
		Tenants:       map[string]Limits{"caged": cagedLimits(), "slow": slowLimits()},
	})
	s.hookLoaded = func(tenant, name string) {
		if name == "bomb" {
			panic("injected test panic")
		}
	}

	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc}); status != 200 {
		t.Fatalf("warm-up: %d %q", status, resp.Outcome)
	}
	baseline := runtime.NumGoroutine()

	// Per program class: the status and outcome it must produce when it
	// gets a slot. A 429 is additionally legal for every class that
	// reaches admission (global shed or the tenant's in-flight cap —
	// queued requests count against it).
	type kind struct {
		tenant  string
		req     runRequest
		raw     []byte
		status  int
		outcome string
	}
	kinds := []kind{
		{req: runRequest{Source: validSrc}, status: 200, outcome: outcomeOK},
		{req: runRequest{Source: `func main() { print(7 * 6); }`}, status: 200, outcome: outcomeOK},
		{tenant: "caged", req: runRequest{Source: spinSrc}, status: 412, outcome: outcomePredictedQuota},
		{tenant: "caged", req: runRequest{Source: thickSrc, Variant: "balanced"}, status: 403, outcome: outcomeQuota},
		{tenant: "slow", req: runRequest{Source: spinSrc}, status: 408, outcome: outcomeDeadline},
		{req: runRequest{Source: vetBadSrc}, status: 422, outcome: outcomeVetRejected},
		{req: runRequest{Source: parseBadSrc}, status: 400, outcome: outcomeCompileError},
		{raw: []byte(`{"source": 12`), status: 400, outcome: outcomeBadRequest},
		{req: runRequest{Name: "bomb", Source: validSrc}, status: 500, outcome: outcomePanic},
	}

	const clients, perClient = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				k := kinds[(c*perClient+i)%len(kinds)]
				var status int
				var resp runResponse
				if k.raw != nil {
					status, _, resp = postRaw(t, ts, k.tenant, k.raw)
				} else {
					status, _, resp = post(t, ts, k.tenant, k.req)
				}
				switch {
				case status == k.status && resp.Outcome == k.outcome:
				case status == 429 && k.raw == nil &&
					(resp.Outcome == outcomeShed || resp.Outcome == outcomeTenantBusy):
					// Admission pushed back under load; malformed-JSON
					// bodies bounce before admission, so 429 is not
					// legal for them.
				default:
					errs <- fmt.Errorf("client %d req %d: status %d outcome %q (%s), want %d %q",
						c, i, status, resp.Outcome, resp.Error, k.status, k.outcome)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics()
	var total int64
	for _, n := range m.Outcomes {
		total += n
	}
	if want := int64(clients*perClient + 1); total != want { // +1 warm-up
		t.Fatalf("metrics account for %d requests, want %d: %+v", total, want, m.Outcomes)
	}
	for _, must := range []string{outcomeOK, outcomeQuota, outcomePredictedQuota, outcomeVetRejected, outcomePanic, outcomeDeadline} {
		if m.Outcomes[must] == 0 {
			t.Errorf("outcome %q never observed: %+v", must, m.Outcomes)
		}
	}
	if m.Cache.Hits == 0 || m.Pool.Hits == 0 {
		t.Errorf("no reuse under load: cache %+v pool %+v", m.Cache, m.Pool)
	}
	if m.Outcomes[outcomePanic] > 0 && m.Pool.Discards == 0 {
		t.Error("panics did not discard their machines")
	}

	s.Drain(2 * time.Second)
	ts.Close()
	settleGoroutines(t, baseline)
}

// TestMetricsEndpoint: /metrics serves the JSON snapshot over HTTP.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc}); status != 200 {
		t.Fatalf("run: %d %q", status, resp.Outcome)
	}
	hres, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(hres.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Admitted != 1 || snap.Outcomes[outcomeOK] != 1 || snap.Steps <= 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if len(snap.StageCycles) == 0 {
		t.Fatal("snapshot has no per-stage cycle attribution")
	}
}

// TestBackendSelection covers the fused-backend plumbing: a request's
// "backend" field and a tenant's Backend default both reach the machine
// config, machines pooled under different backends are kept apart, and
// /metrics splits the idle counts per backend.
func TestBackendSelection(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Tenants: map[string]Limits{"fusedtenant": {Backend: "fused"}},
	})

	// Request-level override on the default tenant.
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc, Backend: "fused"}); status != 200 || len(resp.Outputs) == 0 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("fused run: %d %+v", status, resp)
	}
	// Tenant-level default, no request field.
	if status, _, resp := post(t, ts, "fusedtenant", runRequest{Source: validSrc}); status != 200 || len(resp.Outputs) == 0 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("tenant-default fused run: %d %+v", status, resp)
	}
	// Interp run on the default tenant (empty everywhere = interp).
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc}); status != 200 || len(resp.Outputs) == 0 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("interp run: %d %+v", status, resp)
	}
	// A bad backend name is a 400, not a server error.
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc, Backend: "jit"}); status != 400 || resp.Outcome != outcomeBadRequest {
		t.Fatalf("bad backend: %d %+v", status, resp)
	}

	hres, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(hres.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Pool.IdleByBackend["fused"] == 0 || snap.Pool.IdleByBackend["interp"] == 0 {
		t.Fatalf("expected idle machines under both backends, got %+v", snap.Pool.IdleByBackend)
	}
}

// TestSchedSelection covers the dataflow-scheduler plumbing: a request's
// "sched" field and a tenant's Sched default both reach the machine config,
// results are identical to lockstep runs, machines pooled under different
// schedulers are kept apart, and /metrics splits the idle counts per
// scheduler.
func TestSchedSelection(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Tenants: map[string]Limits{"dftenant": {Sched: "dataflow"}},
	})

	// Request-level override on the default tenant.
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc, Sched: "dataflow"}); status != 200 || len(resp.Outputs) == 0 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("dataflow run: %d %+v", status, resp)
	}
	// Tenant-level default, no request field.
	if status, _, resp := post(t, ts, "dftenant", runRequest{Source: validSrc}); status != 200 || len(resp.Outputs) == 0 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("tenant-default dataflow run: %d %+v", status, resp)
	}
	// Lockstep run on the default tenant (empty everywhere = lockstep).
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc}); status != 200 || len(resp.Outputs) == 0 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("lockstep run: %d %+v", status, resp)
	}
	// A bad scheduler name is a 400, not a server error.
	if status, _, resp := post(t, ts, "", runRequest{Source: validSrc, Sched: "speculative"}); status != 400 || resp.Outcome != outcomeBadRequest {
		t.Fatalf("bad sched: %d %+v", status, resp)
	}

	hres, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(hres.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Pool.IdleBySched["dataflow"] == 0 || snap.Pool.IdleBySched["lockstep"] == 0 {
		t.Fatalf("expected idle machines under both schedulers, got %+v", snap.Pool.IdleBySched)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
