package serve

import (
	"fmt"
	"sync"

	"tcfpram/internal/machine"
	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

// poolKey is the machine-shape identity of a pooled machine: every Config
// field that survives Reset. The per-run governance bounds (MaxSteps,
// MaxThickness) are deliberately excluded — they are re-stamped on every
// lease through SetLimits, so tenants with different quotas share one pool.
type poolKey struct {
	variant       variant.Kind
	backend       machine.Backend
	sched         machine.Sched
	groups, procs int
	sharedWords   int
	localWords    int
	writePolicy   mem.Policy
	pipelineDepth int
	memLatency    int
	balancedBound int
	multiWindow   int
	vectorWidth   int
	timeSlice     int64
	autoSplit     int
	watchdog      int64
	discipline    mem.Discipline
	parallel      bool
	laneThreshold int
}

// keyOf projects a Config onto its pool identity. Configurations carrying
// non-comparable or run-specific state (custom topology, fault plans, stage
// observers, tracing) are not poolable.
func keyOf(cfg machine.Config) (poolKey, error) {
	if cfg.Topology != nil || cfg.FaultPlan != nil || cfg.StageObserver != nil || cfg.TraceEnabled || cfg.CheckpointSink != nil {
		return poolKey{}, fmt.Errorf("serve: config with topology/faults/observer/trace/checkpointing is not poolable")
	}
	return poolKey{
		variant:       cfg.Variant,
		backend:       cfg.Backend,
		sched:         cfg.Sched,
		groups:        cfg.Groups,
		procs:         cfg.ProcsPerGroup,
		sharedWords:   cfg.SharedWords,
		localWords:    cfg.LocalWords,
		writePolicy:   cfg.WritePolicy,
		pipelineDepth: cfg.PipelineDepth,
		memLatency:    cfg.MemLatencyBase,
		balancedBound: cfg.BalancedBound,
		multiWindow:   cfg.MultiInstrWindow,
		vectorWidth:   cfg.VectorWidth,
		timeSlice:     cfg.TimeSliceSteps,
		autoSplit:     cfg.AutoSplitThreshold,
		watchdog:      cfg.WatchdogSteps,
		discipline:    cfg.MemDiscipline,
		parallel:      cfg.Parallel,
		laneThreshold: cfg.LaneParallelThreshold,
	}, nil
}

// MachinePool reuses machines across requests, keyed by configuration shape.
// Reuse depends on machine.Reset being bit-identical to a fresh build — the
// property TestPoolReuseBitIdentity proves against the whole tcf-e corpus.
type MachinePool struct {
	mu      sync.Mutex
	idle    map[poolKey][]*machine.Machine
	maxIdle int
	closed  bool

	hits     int64 // leases served from the idle set
	misses   int64 // leases that built a new machine
	discards int64 // leases dropped as poisoned (panic during a run)
	full     int64 // releases dropped because the idle set was full
}

// NewMachinePool builds a pool keeping at most maxIdlePerKey machines per
// configuration shape (minimum 1).
func NewMachinePool(maxIdlePerKey int) *MachinePool {
	if maxIdlePerKey < 1 {
		maxIdlePerKey = 1
	}
	return &MachinePool{idle: make(map[poolKey][]*machine.Machine), maxIdle: maxIdlePerKey}
}

// Lease is one checked-out machine. Exactly one of Release or Discard must
// be called when the run is over; Release returns the machine to the pool
// after a full Reset, Discard drops it (use after a panic, when the
// machine's internal state can no longer be trusted).
type Lease struct {
	M      *machine.Machine
	Pooled bool // the lease reused an idle machine
	key    poolKey
	pool   *MachinePool
	done   bool
}

// Get leases a machine for cfg, reusing an idle one of the same shape when
// available. The caller should stamp per-run quotas with SetLimits before
// loading a program.
func (p *MachinePool) Get(cfg machine.Config) (*Lease, error) {
	key, err := keyOf(cfg)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		m := list[len(list)-1]
		p.idle[key] = list[:len(list)-1]
		p.hits++
		p.mu.Unlock()
		return &Lease{M: m, Pooled: true, key: key, pool: p}, nil
	}
	p.misses++
	p.mu.Unlock()

	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Lease{M: m, key: key, pool: p}, nil
}

// Release resets the machine and returns it to the pool (dropped silently
// if the pool is closed or the idle set for its shape is full).
func (l *Lease) Release() {
	if l.done {
		return
	}
	l.done = true
	l.M.Reset()
	p := l.pool
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed && len(p.idle[l.key]) < p.maxIdle {
		p.idle[l.key] = append(p.idle[l.key], l.M)
		return
	}
	p.full++
}

// Discard drops the machine without returning it to the pool.
func (l *Lease) Discard() {
	if l.done {
		return
	}
	l.done = true
	l.pool.mu.Lock()
	l.pool.discards++
	l.pool.mu.Unlock()
}

// Close empties the pool and stops accepting releases.
func (p *MachinePool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.idle = make(map[poolKey][]*machine.Machine)
}

// PoolCounters is a point-in-time snapshot of the pool's reuse accounting.
// IdleByBackend and IdleBySched split the idle machines by step-engine
// backend and scheduler so mixed pools (tenants with different backend or
// scheduler defaults) stay observable through /metrics.
type PoolCounters struct {
	Hits          int64          `json:"hits"`
	Misses        int64          `json:"misses"`
	Discards      int64          `json:"discards"`
	Full          int64          `json:"full"`
	Idle          int            `json:"idle"`
	IdleByBackend map[string]int `json:"idle_by_backend,omitempty"`
	IdleBySched   map[string]int `json:"idle_by_sched,omitempty"`
}

// Counters returns the pool's reuse accounting.
func (p *MachinePool) Counters() PoolCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	byBackend := make(map[string]int)
	bySched := make(map[string]int)
	for key, list := range p.idle {
		idle += len(list)
		if len(list) > 0 {
			byBackend[key.backend.String()] += len(list)
			bySched[key.sched.String()] += len(list)
		}
	}
	if len(byBackend) == 0 {
		byBackend = nil
	}
	if len(bySched) == 0 {
		bySched = nil
	}
	return PoolCounters{Hits: p.hits, Misses: p.misses, Discards: p.discards, Full: p.full,
		Idle: idle, IdleByBackend: byBackend, IdleBySched: bySched}
}
