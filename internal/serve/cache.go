package serve

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"tcfpram/internal/analysis"
	"tcfpram/internal/codegen"
	"tcfpram/internal/diag"
	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

// cacheKey identifies one vet+compile result: the source hash plus the two
// options that change what the analyzer reports.
type cacheKey struct {
	srcHash    [sha256.Size]byte
	variant    variant.Kind
	discipline mem.Discipline
}

// cacheEntry is the memoized outcome of vetting and compiling one program.
// Failures are cached exactly like successes so a hostile client resending
// a broken program pays one compile, total. The entry is immutable after
// done closes, except for the cost memo behind costMu.
type cacheEntry struct {
	done chan struct{}

	diags    []diag.Diagnostic
	rejected bool // vet or frontend errors; compiled is nil
	frontend bool // the rejection is a parse/sema failure, not an analyzer finding

	compiled *codegen.Compiled
	err      error // codegen failure after a clean vet

	// costs memoizes static cost predictions per machine shape, computed
	// from the already-compiled program (the vet gate's single parse): the
	// predictive-admission pass never re-parses source.
	costMu sync.Mutex
	costs  map[costKey]*analysis.CostReport
}

// costKey is the machine shape a cost prediction depends on. Topology is
// derived from Groups (the machine default ring), so the shape fields pin
// the prediction completely.
type costKey struct {
	variant        variant.Kind
	groups         int
	procs          int
	sharedWords    int
	localWords     int
	pipelineDepth  int
	memLatencyBase int
	vectorWidth    int
	maxSteps       int64
}

// cost returns the memoized cost prediction of this entry's program for the
// given analysis parameters (which must use the default ring topology).
// Only valid on entries holding a compiled program.
func (e *cacheEntry) cost(params analysis.CostParams) *analysis.CostReport {
	key := costKey{
		variant:        params.Variant,
		groups:         params.Groups,
		procs:          params.ProcsPerGroup,
		sharedWords:    params.SharedWords,
		localWords:     params.LocalWords,
		pipelineDepth:  params.PipelineDepth,
		memLatencyBase: params.MemLatencyBase,
		vectorWidth:    params.VectorWidth,
		maxSteps:       params.MaxSteps,
	}
	e.costMu.Lock()
	defer e.costMu.Unlock()
	if rep, ok := e.costs[key]; ok {
		return rep
	}
	rep := analysis.Cost(e.compiled, params)
	if e.costs == nil {
		e.costs = make(map[costKey]*analysis.CostReport)
	}
	e.costs[key] = rep
	return rep
}

// ProgramCache memoizes vet+compile results keyed by source hash with
// single-flight semantics: concurrent requests for the same program share
// one compilation, with the followers blocking on the leader's done channel.
type ProgramCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	max     int

	hits      int64
	misses    int64
	evictions int64
}

// NewProgramCache builds a cache bounded to maxEntries programs
// (minimum 16).
func NewProgramCache(maxEntries int) *ProgramCache {
	if maxEntries < 16 {
		maxEntries = 16
	}
	return &ProgramCache{entries: make(map[cacheKey]*cacheEntry), max: maxEntries}
}

// Get returns the vet+compile result for src, computing it exactly once per
// (source, variant, discipline) triple. Diagnostics are stamped with a
// content-derived file name so identical sources submitted under different
// client names share one entry byte for byte.
func (c *ProgramCache) Get(src string, vk variant.Kind, disc mem.Discipline) *cacheEntry {
	key := cacheKey{srcHash: sha256.Sum256([]byte(src)), variant: vk, discipline: disc}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e
	}
	c.misses++
	if len(c.entries) >= c.max {
		// Evict one settled entry; map order is as good as random here.
		for k, e := range c.entries {
			select {
			case <-e.done:
			default:
				continue // never evict an in-flight compilation
			}
			delete(c.entries, k)
			c.evictions++
			break
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	// One parse serves vet, compile and the later cost passes:
	// AnalyzeAndCompile type-checks the source once and compiles that same
	// checked program.
	name := fmt.Sprintf("%x.te", key.srcHash[:6])
	e.diags, e.compiled, e.err = analysis.AnalyzeAndCompile(name, src, analysis.Options{Discipline: disc, Variant: vk})
	if e.compiled == nil && e.err == nil {
		e.rejected = true
		e.frontend = len(e.diags) == 1 && (e.diags[0].Check == "parse" || e.diags[0].Check == "sema")
	}
	close(e.done)
	return e
}

// CacheCounters is a point-in-time snapshot of the cache accounting.
type CacheCounters struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Counters returns the cache accounting.
func (c *ProgramCache) Counters() CacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheCounters{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}
