package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tcfpram/internal/codegen"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// runImage captures everything observable about one finished run that a
// pooled machine must reproduce bit-identically against a fresh build.
type runImage struct {
	stats   machine.Stats
	outputs []machine.Output
	memory  []int64
	errText string
}

// loadAndRun mirrors the server's execute path: program + local data
// segments, then a context run.
func loadAndRun(m *machine.Machine, c *codegen.Compiled) runImage {
	img := runImage{}
	if err := m.LoadProgram(c.Program); err != nil {
		img.errText = err.Error()
		return img
	}
	for _, seg := range c.LocalData {
		for g := 0; g < m.Config().Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				img.errText = err.Error()
				return img
			}
		}
	}
	_, err := m.RunContext(context.Background())
	if err != nil {
		img.errText = err.Error()
	}
	st := *m.Stats()
	st.PerGroupOps = append([]int64(nil), st.PerGroupOps...)
	st.PerGroupCycles = append([]int64(nil), st.PerGroupCycles...)
	img.stats = st
	img.outputs = append([]machine.Output(nil), m.Outputs()...)
	img.memory = m.Shared().Snapshot(0, 4096)
	return img
}

// corpusPrograms compiles every tcf-e program in the codegen corpus.
func corpusPrograms(tb testing.TB) map[string]*codegen.Compiled {
	tb.Helper()
	files, err := filepath.Glob(filepath.Join("..", "codegen", "testdata", "*.te"))
	if err != nil || len(files) == 0 {
		tb.Fatalf("no corpus programs: %v", err)
	}
	progs := make(map[string]*codegen.Compiled)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			tb.Fatal(err)
		}
		c, err := codegen.CompileSource(filepath.Base(f), string(src))
		if err != nil {
			tb.Fatalf("%s: %v", f, err)
		}
		progs[filepath.Base(f)] = c
	}
	return progs
}

// spinCompiled is an unbounded loop that keeps committing shared writes, so
// it makes progress (no watchdog) until a quota or deadline stops it.
func spinCompiled(tb testing.TB) *codegen.Compiled {
	tb.Helper()
	c, err := codegen.CompileSource("spin.te", `
shared int beat[1] @ 900;
func main() {
	int n = 0;
	while (1) {
		n += 1;
		beat[0] = n;
	}
}
`)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// TestPoolReuseBitIdentity interleaves pooled runs of the whole corpus
// across goroutines (run under -race in CI) and asserts every reused
// machine reproduces the fresh-machine result bit for bit — stats, outputs
// and the shared-memory image. Reuse after quota-faulted and canceled runs
// is part of the schedule.
func TestPoolReuseBitIdentity(t *testing.T) {
	progs := corpusPrograms(t)
	spin := spinCompiled(t)
	cfg := machine.Default(variant.SingleInstruction)

	// Fresh-machine baselines, one per program.
	want := make(map[string]runImage, len(progs))
	names := make([]string, 0, len(progs))
	for name, c := range progs {
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		img := loadAndRun(m, c)
		if img.errText != "" {
			t.Fatalf("%s baseline: %s", name, img.errText)
		}
		want[name] = img
		names = append(names, name)
	}

	pool := NewMachinePool(3)
	const workers, iters = 8, 12
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lease, err := pool.Get(cfg)
				if err != nil {
					errs <- err
					return
				}
				if err := lease.M.SetLimits(0, 0); err != nil {
					errs <- err
					return
				}
				// Every third iteration dirties the machine with an
				// abnormal stop first: a MaxSteps-quota abort or a
				// canceled run. Release resets it either way.
				switch (w + i) % 3 {
				case 1:
					if err := lease.M.SetLimits(5, 0); err != nil {
						errs <- err
						return
					}
					img := loadAndRun(lease.M, spin)
					if !strings.Contains(img.errText, machine.ErrMaxSteps.Error()) {
						errs <- fmt.Errorf("worker %d iter %d: spin err = %q, want ErrMaxSteps", w, i, img.errText)
					}
					lease.Release()
					continue
				case 2:
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					if err := lease.M.LoadProgram(spin.Program); err != nil {
						errs <- err
						return
					}
					if _, err := lease.M.RunContext(ctx); !errors.Is(err, machine.ErrCanceled) {
						errs <- fmt.Errorf("worker %d iter %d: canceled err = %v", w, i, err)
					}
					lease.Release()
					continue
				}
				name := names[(w*iters+i)%len(names)]
				img := loadAndRun(lease.M, progs[name])
				if !reflect.DeepEqual(img, want[name]) {
					errs <- fmt.Errorf("worker %d iter %d: %s on a pooled machine differs from fresh\ngot  %+v\nwant %+v",
						w, i, name, img.stats, want[name].stats)
				}
				lease.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	c := pool.Counters()
	if c.Hits == 0 {
		t.Error("pool never reused a machine across 96 interleaved runs")
	}
	if c.Discards != 0 {
		t.Errorf("pool discarded %d machines without a panic", c.Discards)
	}
}

// TestPoolRejectsUnpoolableConfigs: configs carrying run-specific state
// (topology objects, fault plans, observers, traces) must not enter the
// pool.
func TestPoolRejectsUnpoolableConfigs(t *testing.T) {
	pool := NewMachinePool(2)
	cfg := machine.Default(variant.SingleInstruction)
	cfg.TraceEnabled = true
	if _, err := pool.Get(cfg); err == nil {
		t.Fatal("traced config accepted into the pool")
	}
}

// TestPoolDiscardAndClose: discarded leases never return to the idle set,
// and a closed pool drops releases instead of growing.
func TestPoolDiscardAndClose(t *testing.T) {
	pool := NewMachinePool(2)
	cfg := machine.Default(variant.SingleInstruction)

	lease, err := pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lease.Discard()
	lease.Release() // second settle is a no-op
	if c := pool.Counters(); c.Discards != 1 || c.Idle != 0 {
		t.Fatalf("after discard: %+v", c)
	}

	lease, err = pool.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	lease.Release()
	if c := pool.Counters(); c.Idle != 0 {
		t.Fatalf("release after close kept a machine idle: %+v", c)
	}
}
