package serve

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tcfpram/internal/machine"
)

// journalRecord is one line of the write-ahead run journal. An "accept"
// record is written after admission, before the run starts; a "done" record
// with the final response is written when the run finishes. A run whose
// accept has no matching done when the server restarts was lost to a crash
// and is recovered: resumed from its checkpoint file when one exists,
// re-executed from the journaled request otherwise.
type journalRecord struct {
	Kind    string       `json:"kind"` // "accept" | "done"
	ID      string       `json:"id"`
	Tenant  string       `json:"tenant,omitempty"`
	SrcHash string       `json:"src_hash,omitempty"` // sha256 of Req.Source (accept)
	Ckpt    string       `json:"ckpt,omitempty"`     // checkpoint file path (accept)
	Req     *runRequest  `json:"req,omitempty"`      // accept
	Status  int          `json:"status,omitempty"`   // done
	Resp    *runResponse `json:"resp,omitempty"`     // done
}

// runJournal is an append-only, fsync-per-record JSONL file. Appends are
// serialized; a torn final line from a crash mid-append is truncated away on
// open, so the journal is always a sequence of complete records.
type runJournal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal reads every complete record from path (creating the file if
// needed), truncates any torn tail, and returns the journal opened for
// appending.
func openJournal(path string) (*runJournal, []journalRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var recs []journalRecord
	var valid int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail from a crash mid-append
		}
		recs = append(recs, rec)
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: reading journal %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &runJournal{f: f}, recs, nil
}

// append durably writes one record: marshal, write, fsync.
func (j *runJournal) append(rec *journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *runJournal) Close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// completedRun is the memoized answer for one finished request id.
type completedRun struct {
	status int
	resp   *runResponse
}

// newRunID generates a server-side request id for clients that did not send
// an X-Request-Id of their own.
func newRunID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: reading random bytes: %v", err))
	}
	return "r-" + hex.EncodeToString(b[:])
}

// hashSource is the journal's source integrity stamp.
func hashSource(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// ckptPath maps a request id (possibly client-chosen, so never trusted as a
// file name) to its checkpoint file inside RecoverDir.
func (s *Server) ckptPath(id string) string {
	h := sha256.Sum256([]byte(id))
	return filepath.Join(s.opts.RecoverDir, fmt.Sprintf("ckpt-%x.snap", h[:12]))
}

// completedResponse returns the memoized answer for a finished request id.
func (s *Server) completedResponse(id string) (completedRun, bool) {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	done, ok := s.completed[id]
	return done, ok
}

// beginRun marks a request id as in flight; false when it already is.
func (s *Server) beginRun(id string) bool {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	if _, dup := s.inflightIDs[id]; dup {
		return false
	}
	s.inflightIDs[id] = struct{}{}
	return true
}

func (s *Server) endRun(id string) {
	s.idMu.Lock()
	defer s.idMu.Unlock()
	delete(s.inflightIDs, id)
}

// finishRun records a run's final answer: journal the done record, memoize
// it for idempotent replay, and delete the now-obsolete checkpoint file.
func (s *Server) finishRun(id string, status int, resp *runResponse) {
	if err := s.journal.append(&journalRecord{Kind: "done", ID: id, Status: status, Resp: resp}); err != nil {
		s.opts.Logf("serve: journaling done record for %s: %v", id, err)
	}
	s.idMu.Lock()
	s.completed[id] = completedRun{status: status, resp: resp}
	s.idMu.Unlock()
	os.Remove(s.ckptPath(id))
}

// initRecovery opens the journal, rebuilds the completed-run memo from done
// records, and synchronously finishes every run the previous process lost —
// from its last checkpoint when one survives, from the journaled request
// otherwise. It runs in NewRecovered, before the caller starts listening, so
// a recovered server comes up with no half-finished state.
func (s *Server) initRecovery() error {
	if err := os.MkdirAll(s.opts.RecoverDir, 0o755); err != nil {
		return err
	}
	j, recs, err := openJournal(filepath.Join(s.opts.RecoverDir, "journal.jsonl"))
	if err != nil {
		return err
	}
	s.journal = j

	var pending []journalRecord
	index := make(map[string]int) // id -> slot in pending
	for _, rec := range recs {
		switch rec.Kind {
		case "accept":
			if _, dup := index[rec.ID]; dup {
				continue
			}
			index[rec.ID] = len(pending)
			pending = append(pending, rec)
		case "done":
			if i, ok := index[rec.ID]; ok {
				pending[i].Kind = "" // settled
			}
			s.completed[rec.ID] = completedRun{status: rec.Status, resp: rec.Resp}
		}
	}
	for _, rec := range pending {
		if rec.Kind != "accept" {
			continue
		}
		s.opts.Logf("serve: recovering run %s (tenant %q, program %q)", rec.ID, rec.Tenant, rec.Req.Name)
		resp, status := s.recoverRun(&rec)
		resp.Tenant = rec.Tenant
		s.metrics.count(resp.Outcome)
		s.metrics.recovered.Add(1)
		s.finishRun(rec.ID, status, resp)
	}
	return nil
}

// recoverRun finishes one crashed run and returns the response its original
// request id will answer with from now on.
func (s *Server) recoverRun(rec *journalRecord) (*runResponse, int) {
	if rec.Req == nil || hashSource(rec.Req.Source) != rec.SrcHash {
		return &runResponse{Outcome: outcomeInternal, Error: "journal: accept record failed its source-hash check"},
			http.StatusInternalServerError
	}
	lim := s.limitsFor(rec.Tenant)
	if rec.Ckpt != "" {
		if resp, status, ok := s.resumeFromCheckpoint(rec, lim); ok {
			return resp, status
		}
	}
	// No usable checkpoint: the run is deterministic, so re-executing the
	// journaled request from scratch yields the same answer it would have
	// produced.
	return s.runAdmitted(context.Background(), rec.Req, rec.Tenant, lim, rec.ID)
}

// resumeFromCheckpoint restores the run's machine from its last checkpoint
// and runs it to completion under a fresh wall-clock deadline. ok=false
// means the checkpoint was absent or unusable and the caller should re-run
// from scratch instead.
func (s *Server) resumeFromCheckpoint(rec *journalRecord, lim Limits) (*runResponse, int, bool) {
	f, err := os.Open(rec.Ckpt)
	if err != nil {
		return nil, 0, false
	}
	defer f.Close()
	vk, _, runDisc, errResp, _ := parseRunOptions(rec.Req)
	if errResp != nil {
		return nil, 0, false
	}
	cfg, errResp, _ := s.buildConfig(rec.Req, vk, runDisc, lim)
	if errResp != nil {
		return nil, 0, false
	}
	m, err := machine.Restore(f, cfg)
	if err != nil {
		s.opts.Logf("serve: checkpoint %s unusable (%v); re-running %s from scratch", rec.Ckpt, err, rec.ID)
		return nil, 0, false
	}
	s.metrics.restores.Add(1)

	ctx, cancel := context.WithTimeout(context.Background(), lim.MaxWallClock)
	defer cancel()
	start := time.Now()
	stats, runErr := m.RunContext(ctx)
	wall := time.Since(start)
	s.metrics.observe(stats)
	if runErr != nil {
		outcome, code := mapRunError(runErr, s.baseCtx)
		return &runResponse{Outcome: outcome, Error: runErr.Error(), WallClock: wall.String()}, code, true
	}
	return s.okResponse(m, stats, rec.Req, false, wall, ""), http.StatusOK, true
}
