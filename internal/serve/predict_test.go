package serve

import (
	"strings"
	"testing"
	"time"
)

// TestPredictiveAdmissionBeforePooling is the admission-soundness gate: a
// job whose predicted cost provably exceeds the tenant quota must bounce
// with 412 before any machine is built or pooled, and the outcome must be
// counted under its own metric.
func TestPredictiveAdmissionBeforePooling(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Tenants: map[string]Limits{"caged": cagedLimits()},
	})

	status, _, resp := post(t, ts, "caged", runRequest{Source: thickSrc})
	if status != 412 || resp.Outcome != outcomePredictedQuota {
		t.Fatalf("status %d outcome %q (%s), want 412 %q",
			status, resp.Outcome, resp.Error, outcomePredictedQuota)
	}
	m := s.Metrics()
	if m.Pool.Hits != 0 || m.Pool.Misses != 0 || m.Pool.Idle != 0 {
		t.Fatalf("a machine was pooled for a predicted-over-quota job: %+v", m.Pool)
	}
	if m.Outcomes[outcomePredictedQuota] != 1 || m.Prediction.RejectedOverQuota != 1 {
		t.Fatalf("rejection not counted: %+v / %+v", m.Outcomes, m.Prediction)
	}
}

// TestPredictiveAdmissionReasons checks each quota dimension rejects with a
// reason naming it, and that within-quota versions of the same programs are
// admitted.
func TestPredictiveAdmissionReasons(t *testing.T) {
	lim := Limits{MaxSteps: 300, MaxThickness: 8, MaxSharedWords: 1 << 20, MaxWallClock: 5 * time.Second}
	rejects := []struct {
		name string
		lim  Limits
		src  string
		want string
	}{
		{"steps", lim, spinSrc, "predicted steps"},
		{"thickness", lim, thickSrc, "predicted flow thickness"},
	}
	for _, tc := range rejects {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, Options{Tenants: map[string]Limits{"caged": tc.lim}})
			status, _, resp := post(t, ts, "caged", runRequest{Source: tc.src})
			if status != 412 || resp.Outcome != outcomePredictedQuota {
				t.Fatalf("status %d outcome %q (%s)", status, resp.Outcome, resp.Error)
			}
			if !strings.Contains(resp.Error, tc.want) {
				t.Fatalf("reason %q does not name the quota dimension %q", resp.Error, tc.want)
			}
		})
	}

	// The same tenant envelope admits programs that fit it.
	_, ts := newTestServer(t, Options{Tenants: map[string]Limits{"caged": lim}})
	status, _, resp := post(t, ts, "caged", runRequest{Source: validSrc})
	if status != 200 || resp.Outcome != outcomeOK {
		t.Fatalf("within-quota program rejected: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
}

// TestPredictionMetricsTrackRuns: clean runs with an exact prediction feed
// the predicted-vs-actual accounting, and — the analyzer being an exact
// mirror of the engine — the error must be zero.
func TestPredictionMetricsTrackRuns(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	for i := 0; i < 3; i++ {
		status, _, resp := post(t, ts, "", runRequest{Source: validSrc})
		if status != 200 {
			t.Fatalf("run %d: %d %q", i, status, resp.Outcome)
		}
	}
	p := s.Metrics().Prediction
	if p.PredictedRuns != 3 || p.ExactRuns != 3 {
		t.Fatalf("predicted/exact runs %d/%d, want 3/3", p.PredictedRuns, p.ExactRuns)
	}
	if p.CycleErrorSum != 0 || p.MeasuredCycleSum <= 0 {
		t.Fatalf("cycle error %d over %d measured cycles, want 0 over >0",
			p.CycleErrorSum, p.MeasuredCycleSum)
	}
}

// TestUnresolvedPredictionAdmits: a program the analyzer cannot bound (an
// unsupported step shape) must be admitted and governed by the runtime
// quotas exactly as before.
func TestUnresolvedPredictionAdmits(t *testing.T) {
	s, ts := newTestServer(t, Options{Tenants: map[string]Limits{"caged": cagedLimits()}})
	status, _, resp := post(t, ts, "caged", runRequest{Source: thickSrc, Variant: "balanced"})
	if status != 403 || resp.Outcome != outcomeQuota {
		t.Fatalf("status %d outcome %q (%s), want runtime 403 %q",
			status, resp.Outcome, resp.Error, outcomeQuota)
	}
	// The run carried no exact prediction, so it must not pollute the
	// predicted-vs-actual accounting.
	if p := s.Metrics().Prediction; p.PredictedRuns != 0 {
		t.Fatalf("unresolved prediction counted as predicted run: %+v", p)
	}
}
