package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tcfpram/internal/machine"
)

// newRecoveredServer builds a crash-recoverable server over dir and an HTTP
// front end for it.
func newRecoveredServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewRecovered(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postID is post with an explicit X-Request-Id header.
func postID(t *testing.T, ts *httptest.Server, tenant, id string, req runRequest) (int, http.Header, runResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-Id", id)
	if tenant != "" {
		hreq.Header.Set("X-Tenant", tenant)
	}
	hres, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var resp runResponse
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return hres.StatusCode, hres.Header, resp
}

// TestRecoveryIdempotentReplay: a finished request id answers from the memo
// — same status, same body — without re-running the program.
func TestRecoveryIdempotentReplay(t *testing.T) {
	s, ts := newRecoveredServer(t, Options{RecoverDir: t.TempDir()})

	status, hdr, resp := postID(t, ts, "", "req-1", runRequest{Source: validSrc})
	if status != http.StatusOK || resp.Outcome != outcomeOK {
		t.Fatalf("first run: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
	if got := hdr.Get("X-Request-Id"); got != "req-1" {
		t.Fatalf("X-Request-Id echoed %q, want req-1", got)
	}
	stepsBefore := s.Metrics().Steps

	status2, _, resp2 := postID(t, ts, "", "req-1", runRequest{Source: validSrc})
	if status2 != status || resp2.Outcome != resp.Outcome || len(resp2.Outputs) != len(resp.Outputs) {
		t.Fatalf("replay differs: %d %q vs %d %q", status2, resp2.Outcome, status, resp.Outcome)
	}
	m := s.Metrics()
	if m.Recovery.ReplayedResponses != 1 {
		t.Fatalf("replayed = %d, want 1", m.Recovery.ReplayedResponses)
	}
	if m.Steps != stepsBefore {
		t.Fatal("replay re-executed the program")
	}

	// A request without an id gets a server-generated one, echoed back.
	_, hdr3, _ := post(t, ts, "", runRequest{Source: validSrc})
	if hdr3.Get("X-Request-Id") == "" {
		t.Fatal("no server-generated X-Request-Id")
	}
}

// TestRecoveryDuplicateInFlight: the same id on two concurrent requests is
// refused with 409 + Retry-After, never run twice.
func TestRecoveryDuplicateInFlight(t *testing.T) {
	release := make(chan struct{})
	s, ts := newRecoveredServer(t, Options{RecoverDir: t.TempDir()})
	s.hookLoaded = func(tenant, name string) {
		if name == "block" {
			<-release
		}
	}

	first := make(chan runResponse, 1)
	go func() {
		_, _, resp := postID(t, ts, "", "dup-1", runRequest{Name: "block", Source: validSrc})
		first <- resp
	}()
	waitFor(t, func() bool { return s.running.Load() == 1 })

	status, hdr, resp := postID(t, ts, "", "dup-1", runRequest{Source: validSrc})
	if status != http.StatusConflict || resp.Outcome != outcomeDuplicate {
		t.Fatalf("duplicate: %d %q", status, resp.Outcome)
	}
	if _, ok := RetryAfter(hdr); !ok {
		t.Fatal("duplicate response has no Retry-After")
	}
	close(release)
	if resp := <-first; resp.Outcome != outcomeOK {
		t.Fatalf("original run finished %q", resp.Outcome)
	}
	if got := s.Metrics().Outcomes[outcomeOK]; got != 1 {
		t.Fatalf("ok outcomes = %d, want exactly 1 execution", got)
	}
}

// TestRecoveryJournalReplay is the crash simulation at the package level: a
// server journals an accept record and dies without a done record; a second
// server over the same RecoverDir must finish the run during construction
// and answer the original id idempotently.
func TestRecoveryJournalReplay(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewRecovered(Options{RecoverDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// The crash window: accept journaled, no done record. This is exactly
	// the state a SIGKILL mid-run leaves behind.
	req := &runRequest{Name: "lost", Source: validSrc}
	if err := s1.journal.append(&journalRecord{
		Kind: "accept", ID: "crashed-1", Tenant: "alice",
		SrcHash: hashSource(req.Source), Ckpt: s1.ckptPath("crashed-1"), Req: req,
	}); err != nil {
		t.Fatal(err)
	}
	s1.journal.Close() // the process dies; no drain, no done record

	s2, ts := newRecoveredServer(t, Options{RecoverDir: dir})
	m := s2.Metrics()
	if m.Recovery.RecoveredRuns != 1 {
		t.Fatalf("recovered runs = %d, want 1", m.Recovery.RecoveredRuns)
	}
	if m.Outcomes[outcomeOK] != 1 {
		t.Fatalf("recovered run outcomes: %+v", m.Outcomes)
	}

	// The original request id answers with the finished result.
	status, _, resp := postID(t, ts, "alice", "crashed-1", runRequest{Source: req.Source})
	if status != http.StatusOK || resp.Outcome != outcomeOK {
		t.Fatalf("replayed answer: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
	if len(resp.Outputs) != 1 || resp.Outputs[0].Values[0] != 42 {
		t.Fatalf("recovered outputs: %+v", resp.Outputs)
	}
	if resp.Tenant != "alice" {
		t.Fatalf("recovered tenant %q", resp.Tenant)
	}
	if s2.Metrics().Recovery.ReplayedResponses != 1 {
		t.Fatal("answer was not served from the memo")
	}
}

// ckptSrc loops long enough that a mid-run checkpoint lands strictly inside
// the run, and touches memory so the result proves the resumed machine kept
// its state.
const ckptSrc = `
shared int c[8] @ 300;
func main() {
	#8;
	int i = 0;
	while (i < 6) {
		c[tid] = c[tid] + tid + i;
		i += 1;
	}
}
`

// writeMidRunCheckpoint reproduces what execute's FileSink would have left
// behind at the moment of a crash: a machine built exactly the way the
// server builds one, stepped partway, snapshotted to the run's checkpoint
// path.
func writeMidRunCheckpoint(t *testing.T, s *Server, req *runRequest, id string) {
	t.Helper()
	vk, vetDisc, runDisc, errResp, _ := parseRunOptions(req)
	if errResp != nil {
		t.Fatalf("parse options: %s", errResp.Error)
	}
	entry := s.cache.Get(req.Source, vk, vetDisc)
	if entry.rejected || entry.err != nil {
		t.Fatalf("compile: rejected=%v err=%v", entry.rejected, entry.err)
	}
	cfg, errResp, _ := s.buildConfig(req, vk, runDisc, s.limitsFor("anon"))
	if errResp != nil {
		t.Fatalf("config: %s", errResp.Error)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(entry.compiled.Program); err != nil {
		t.Fatal(err)
	}
	for _, seg := range entry.compiled.LocalData {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && !m.Done(); i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Done() {
		t.Fatal("program finished before the mid-run checkpoint; use a longer one")
	}
	f, err := os.Create(s.ckptPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryResumeFromCheckpoint: when the crashed run left a checkpoint,
// the restarted server restores the machine from it instead of re-running
// from scratch, and the finished result is bit-identical to a run that was
// never interrupted.
func TestRecoveryResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	peek := []peekRange{{Addr: 300, N: 8}}

	// Oracle result from an ordinary, never-crashed server.
	_, oracleTS := newTestServer(t, Options{})
	_, _, oracle := post(t, oracleTS, "", runRequest{Source: ckptSrc, Peek: peek})
	if oracle.Outcome != outcomeOK {
		t.Fatalf("oracle: %q (%s)", oracle.Outcome, oracle.Error)
	}

	// The crash window again, this time with the run's checkpoint on disk.
	s1, err := NewRecovered(Options{RecoverDir: dir, CheckpointEverySteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := &runRequest{Name: "ckpt", Source: ckptSrc, Peek: peek}
	if err := s1.journal.append(&journalRecord{
		Kind: "accept", ID: "ckpt-1", Tenant: "anon",
		SrcHash: hashSource(req.Source), Ckpt: s1.ckptPath("ckpt-1"), Req: req,
	}); err != nil {
		t.Fatal(err)
	}
	writeMidRunCheckpoint(t, s1, req, "ckpt-1")
	s1.journal.Close()

	s2, ts := newRecoveredServer(t, Options{RecoverDir: dir, CheckpointEverySteps: 1})
	m := s2.Metrics()
	if m.Recovery.Restores != 1 {
		t.Fatalf("restores = %d, want 1 (recovery did not use the checkpoint)", m.Recovery.Restores)
	}
	if m.Recovery.RecoveredRuns != 1 {
		t.Fatalf("recovered runs = %d, want 1", m.Recovery.RecoveredRuns)
	}

	status, _, resp := postID(t, ts, "", "ckpt-1", runRequest{Source: ckptSrc})
	if status != http.StatusOK || resp.Outcome != outcomeOK {
		t.Fatalf("recovered answer: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
	// Bit-identical to the straight-through oracle: outputs, peeked memory,
	// steps and cycles.
	if resp.Steps != oracle.Steps || resp.Cycles != oracle.Cycles {
		t.Fatalf("stats diverged: steps %d/%d cycles %d/%d", resp.Steps, oracle.Steps, resp.Cycles, oracle.Cycles)
	}
	gotMem, _ := json.Marshal(resp.Memory)
	wantMem, _ := json.Marshal(oracle.Memory)
	if !bytes.Equal(gotMem, wantMem) {
		t.Fatalf("memory diverged: %s vs %s", gotMem, wantMem)
	}
	gotOut, _ := json.Marshal(resp.Outputs)
	wantOut, _ := json.Marshal(oracle.Outputs)
	if !bytes.Equal(gotOut, wantOut) {
		t.Fatalf("outputs diverged: %s vs %s", gotOut, wantOut)
	}
	// The checkpoint file is deleted once the run is settled.
	if _, err := os.Stat(s2.ckptPath("ckpt-1")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up: %v", err)
	}
}

// TestRecoveryCheckpointsWritten: a live run in recovery mode writes
// periodic checkpoints and counts them in /metrics.
func TestRecoveryCheckpointsWritten(t *testing.T) {
	s, ts := newRecoveredServer(t, Options{RecoverDir: t.TempDir(), CheckpointEverySteps: 8})
	status, _, resp := post(t, ts, "", runRequest{Source: ckptSrc})
	if status != http.StatusOK {
		t.Fatalf("run: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
	if got := s.Metrics().Recovery.CheckpointsWritten; got < 1 {
		t.Fatalf("checkpoints written = %d, want >= 1", got)
	}
}

// TestRecoveryTornJournalTail: a partial final line (crash mid-append) is
// truncated on open and does not poison earlier records or later appends.
func TestRecoveryTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	full := `{"kind":"done","id":"a","status":200,"resp":{"outcome":"ok","cached_program":true,"pooled_machine":false}}` + "\n"
	if err := os.WriteFile(path, []byte(full+`{"kind":"acc`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := newRecoveredServer(t, Options{RecoverDir: dir})
	if _, ok := s.completedResponse("a"); !ok {
		t.Fatal("complete record before the torn tail was lost")
	}
	// New runs append cleanly after the truncation.
	if status, _, resp := postID(t, ts, "", "b", runRequest{Source: validSrc}); status != http.StatusOK {
		t.Fatalf("post-truncation run: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %d unparseable after truncation: %v\n%s", i, err, line)
		}
	}
}

// TestRetryAfterMonotonic pins the derived Retry-After hint: a deeper
// backlog never shrinks the hint, and the hint stays within [1s, 60s].
func TestRetryAfterMonotonic(t *testing.T) {
	s := New(Options{MaxConcurrent: 2})
	// Fix the measured mean run time at 1s.
	s.metrics.runNanos.Store(int64(time.Second))
	s.metrics.runsMeasured.Store(1)

	prev := 0
	for backlog := int64(0); backlog <= 400; backlog += 7 {
		s.queued.Store(backlog)
		s.running.Store(2)
		secs := s.retryAfterSecs()
		if secs < prev {
			t.Fatalf("backlog %d: hint %ds < previous %ds (not monotone)", backlog, secs, prev)
		}
		if secs < 1 || secs > 60 {
			t.Fatalf("backlog %d: hint %ds outside [1,60]", backlog, secs)
		}
		prev = secs
	}
	if prev < 60 {
		t.Fatalf("huge backlog never reached the 60s cap (got %ds)", prev)
	}

	// Before any run has finished, the conservative default mean still
	// yields a hint inside the clamp.
	s2 := New(Options{MaxConcurrent: 4})
	if secs := s2.retryAfterSecs(); secs < 1 || secs > 60 {
		t.Fatalf("cold-start hint %ds outside [1,60]", secs)
	}
}

// TestWatchdogDerivedFromQuota: with Options.WatchdogSteps unset the
// watchdog derives from the tenant's MaxSteps quota, so a silent livelock
// dies quickly with a runtime-fault instead of burning the wall clock or
// grinding through the whole step quota.
func TestWatchdogDerivedFromQuota(t *testing.T) {
	if w := watchdogFor(300); w != 256 {
		t.Fatalf("watchdogFor(300) = %d, want the 256 floor", w)
	}
	if w := watchdogFor(1 << 40); w != 1<<14 {
		t.Fatalf("watchdogFor(1<<40) = %d, want the 1<<14 cap", w)
	}
	if w := watchdogFor(1 << 16); w != 1<<13 {
		t.Fatalf("watchdogFor(1<<16) = %d, want MaxSteps/8", w)
	}

	// A silent livelock: an empty loop does no observable work, so the
	// derived watchdog (16Ki steps here) must kill it long before the 1Mi
	// step quota and the 30s wall clock.
	const quota = 1 << 20
	_, ts := newTestServer(t, Options{
		Tenants: map[string]Limits{"live": {MaxSteps: quota, MaxWallClock: 30 * time.Second}},
	})
	start := time.Now()
	status, _, resp := post(t, ts, "live", runRequest{Source: `func main() { while (1) { } }`})
	elapsed := time.Since(start)
	if status != http.StatusConflict || resp.Outcome != outcomeRuntimeFault {
		t.Fatalf("livelock: %d %q (%s)", status, resp.Outcome, resp.Error)
	}
	if !strings.Contains(resp.Error, "watchdog") {
		t.Fatalf("livelock died of %q, want the watchdog", resp.Error)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("watchdog took %s; not early", elapsed)
	}
	if resp.Steps >= quota {
		t.Fatalf("run burned the whole step quota (%d steps)", resp.Steps)
	}
}

// TestRecoveryConcurrentLoad exercises the journaled path under
// concurrency: many clients with unique ids, every run settles, and the
// journal pairs every accept with a done record.
func TestRecoveryConcurrentLoad(t *testing.T) {
	dir := t.TempDir()
	const n = 24
	// The per-tenant in-flight cap must admit the full burst: this test is
	// about journal pairing under concurrency, not admission control.
	s, ts := newRecoveredServer(t, Options{
		RecoverDir: dir, MaxConcurrent: 4, MaxQueue: 64, QueueWait: 10 * time.Second,
		DefaultLimits: Limits{MaxInFlight: n},
	})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, resp := postID(t, ts, "", fmt.Sprintf("load-%d", i), runRequest{Source: validSrc})
			if status != http.StatusOK {
				t.Errorf("run %d: %d %q (%s)", i, status, resp.Outcome, resp.Error)
			}
		}(i)
	}
	wg.Wait()

	data, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	accepts, dones := 0, 0
	for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad journal line: %v", err)
		}
		switch rec.Kind {
		case "accept":
			accepts++
		case "done":
			dones++
		}
	}
	if accepts != n || dones != n {
		t.Fatalf("journal has %d accepts / %d dones, want %d/%d", accepts, dones, n, n)
	}
	if got := s.Metrics().Outcomes[outcomeOK]; got != n {
		t.Fatalf("ok outcomes = %d, want %d", got, n)
	}
}
