// Package serve implements the multi-tenant tcf-e execution server behind
// cmd/tcfserve: clients POST programs to /run and get back outputs,
// statistics and memory snapshots from a governed run on the extended
// PRAM-NUMA machine.
//
// The request path is a fixed pipeline:
//
//	admission (bounded queue, load shedding, per-tenant concurrency)
//	→ vet gate (tcfvet static analysis, single-flight compile cache)
//	→ machine pool (Reset-reuse keyed by config shape)
//	→ governed run (MaxSteps, MaxThickness, wall-clock deadline, watchdog)
//	→ metrics (per-outcome counts, Figure 13 per-stage cycle attribution)
//
// Every failure mode maps to a distinct HTTP status so clients can react
// mechanically: 429 means back off (Retry-After is set), 403 means the
// program exceeded its tenant's quota while running, 412 means the static
// cost analyzer proved it would exceed the quota (rejected at admission,
// before a machine is pooled), 422 means tcfvet rejected it, 503 means the
// server is draining. Request panics are isolated: the machine is
// discarded, the client gets a 500, and the server keeps serving.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tcfpram/internal/analysis"
	"tcfpram/internal/checkpoint"
	"tcfpram/internal/diag"
	"tcfpram/internal/machine"
	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

// Outcome strings carried in responses and counted by /metrics.
const (
	outcomeOK           = "ok"
	outcomeShed         = "shed"
	outcomeTenantBusy   = "tenant-busy"
	outcomeDraining     = "draining"
	outcomeBadRequest   = "bad-request"
	outcomeTooLarge     = "too-large"
	outcomeVetRejected  = "vet-rejected"
	outcomeCompileError = "compile-error"
	outcomeQuota        = "quota-exceeded"
	// outcomePredictedQuota rejects a run whose statically predicted cost
	// provably exceeds the tenant's quota, before any machine is pooled
	// (HTTP 412: the precondition "fits the quota" failed at admission).
	outcomePredictedQuota = "predicted-over-quota"
	outcomeDeadline       = "deadline"
	outcomeRuntimeFault   = "runtime-fault"
	outcomePanic          = "panic"
	outcomeDuplicate      = "duplicate"
	outcomeInternal       = "internal"
)

// Limits is one tenant's resource envelope. Zero fields take the server
// defaults (see defaultLimits).
type Limits struct {
	// MaxSteps bounds machine steps per run (ErrMaxSteps → 403).
	MaxSteps int64
	// MaxThickness bounds any flow's thickness (ErrThicknessLimit → 403).
	MaxThickness int
	// MaxSharedWords caps the shared-memory size a request may ask for.
	MaxSharedWords int
	// MaxWallClock is the per-run wall-clock deadline (→ 408).
	MaxWallClock time.Duration
	// MaxSourceBytes caps program source size (→ 413).
	MaxSourceBytes int
	// MaxInFlight caps the tenant's concurrent runs (→ 429).
	MaxInFlight int
	// Backend is the tenant's default step-engine backend ("interp" or
	// "fused"; empty inherits the server default, which is interp). A
	// request may override it per run with its own "backend" field.
	Backend string
	// Sched is the tenant's default step scheduler ("lockstep" or
	// "dataflow"; empty inherits the server default, which is lockstep).
	// A request may override it per run with its own "sched" field. The
	// schedulers are bit-identical; this only trades wall clock.
	Sched string
}

func defaultLimits() Limits {
	return Limits{
		MaxSteps:       1 << 20,
		MaxThickness:   1 << 16,
		MaxSharedWords: 1 << 20,
		MaxWallClock:   5 * time.Second,
		MaxSourceBytes: 64 << 10,
		MaxInFlight:    4,
	}
}

// withDefaults fills zero fields from the defaults.
func (l Limits) withDefaults(d Limits) Limits {
	if l.MaxSteps <= 0 {
		l.MaxSteps = d.MaxSteps
	}
	if l.MaxThickness <= 0 {
		l.MaxThickness = d.MaxThickness
	}
	if l.MaxSharedWords <= 0 {
		l.MaxSharedWords = d.MaxSharedWords
	}
	if l.MaxWallClock <= 0 {
		l.MaxWallClock = d.MaxWallClock
	}
	if l.MaxSourceBytes <= 0 {
		l.MaxSourceBytes = d.MaxSourceBytes
	}
	if l.MaxInFlight <= 0 {
		l.MaxInFlight = d.MaxInFlight
	}
	if l.Backend == "" {
		l.Backend = d.Backend
	}
	if l.Sched == "" {
		l.Sched = d.Sched
	}
	return l
}

// Options configures a Server. The zero value is usable: every field has a
// default chosen for a small shared instance.
type Options struct {
	// MaxConcurrent is the number of run slots (default 4).
	MaxConcurrent int
	// MaxQueue is how many admitted requests may wait for a slot before
	// new arrivals are shed with 429 (default 2×MaxConcurrent).
	MaxQueue int
	// QueueWait caps how long a queued request waits for a slot before it
	// is shed (default 2s).
	QueueWait time.Duration
	// MaxGroups / MaxProcs cap the machine shape a request may ask for
	// (default 16 each).
	MaxGroups int
	MaxProcs  int
	// WatchdogSteps is the no-progress deadlock watchdog stamped on every
	// machine. 0 (the default) derives the bound per tenant from its
	// MaxSteps quota — see watchdogFor — so livelocked programs are killed
	// by the watchdog long before they burn the whole wall-clock deadline.
	WatchdogSteps int64
	// PoolIdlePerKey bounds idle machines kept per config shape
	// (default MaxConcurrent).
	PoolIdlePerKey int
	// CacheEntries bounds the compiled-program cache (default 256).
	CacheEntries int
	// DefaultLimits is the resource envelope of unknown tenants; Tenants
	// overrides it per X-Tenant header value. Zero fields of either take
	// the built-in defaults.
	DefaultLimits Limits
	Tenants       map[string]Limits
	// RecoverDir enables crash recovery (NewRecovered only): the
	// write-ahead run journal and per-run machine checkpoints live here.
	// After a crash, NewRecovered replays the journal, resumes lost runs
	// from their last checkpoint (re-executes from scratch when none was
	// written yet) and answers the original request ids idempotently.
	RecoverDir string
	// CheckpointEverySteps is how often a recoverable run snapshots its
	// machine (default 256 steps; only meaningful with RecoverDir).
	CheckpointEverySteps int64
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) normalized() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 2 * o.MaxConcurrent
	}
	if o.QueueWait <= 0 {
		o.QueueWait = 2 * time.Second
	}
	if o.MaxGroups <= 0 {
		o.MaxGroups = 16
	}
	if o.MaxProcs <= 0 {
		o.MaxProcs = 16
	}
	if o.CheckpointEverySteps <= 0 {
		o.CheckpointEverySteps = 256
	}
	if o.PoolIdlePerKey <= 0 {
		o.PoolIdlePerKey = o.MaxConcurrent
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	o.DefaultLimits = o.DefaultLimits.withDefaults(defaultLimits())
	return o
}

// Server executes tcf-e programs for many concurrent clients with pooled
// machines, cached compilation, per-tenant quotas, bounded-queue admission
// and graceful drain. Build with New, mount Handler, stop with Drain.
type Server struct {
	opts  Options
	pool  *MachinePool
	cache *ProgramCache

	slots   chan struct{} // run-slot semaphore, capacity MaxConcurrent
	queued  atomic.Int64  // requests waiting for a slot
	running atomic.Int64  // requests holding a slot

	drainFlag atomic.Bool
	drainCh   chan struct{} // closed when draining starts
	inflight  sync.WaitGroup

	baseCtx    context.Context // canceled at the drain deadline
	baseCancel context.CancelFunc

	tenantMu sync.Mutex
	tenants  map[string]*tenantState

	metrics metrics

	// Crash-recovery state (NewRecovered only; nil journal = disabled).
	journal     *runJournal
	idMu        sync.Mutex
	inflightIDs map[string]struct{}
	completed   map[string]completedRun

	// hookLoaded, when set, runs after a program is loaded onto the leased
	// machine and before the run — the test seam for panic isolation.
	hookLoaded func(tenant, name string)
}

type tenantState struct {
	inflight atomic.Int64
}

// New builds a Server from opts. Crash recovery (Options.RecoverDir) needs a
// constructor that can fail and block on journal replay — use NewRecovered
// for that; New ignores RecoverDir.
func New(opts Options) *Server {
	o := opts.normalized()
	o.RecoverDir = ""
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:        o,
		pool:        NewMachinePool(o.PoolIdlePerKey),
		cache:       NewProgramCache(o.CacheEntries),
		slots:       make(chan struct{}, o.MaxConcurrent),
		drainCh:     make(chan struct{}),
		baseCtx:     ctx,
		baseCancel:  cancel,
		tenants:     make(map[string]*tenantState),
		inflightIDs: make(map[string]struct{}),
		completed:   make(map[string]completedRun),
	}
}

// NewRecovered is New with crash recovery: it opens the write-ahead run
// journal in opts.RecoverDir, replays it, synchronously finishes every run a
// previous process lost (resuming from the last checkpoint when one exists)
// and memoizes finished answers so the original request ids are served
// idempotently. It returns once recovery is complete, so the caller can
// start listening on a server with no half-finished state.
func NewRecovered(opts Options) (*Server, error) {
	if opts.RecoverDir == "" {
		return nil, fmt.Errorf("serve: NewRecovered needs Options.RecoverDir")
	}
	dir := opts.RecoverDir
	s := New(opts)
	s.opts.RecoverDir = dir
	if err := s.initRecovery(); err != nil {
		return nil, fmt.Errorf("serve: recovery in %s: %w", dir, err)
	}
	return s, nil
}

// Handler returns the server's HTTP routes: POST /run, GET /metrics,
// GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Drain performs a graceful shutdown: stop admitting, let in-flight runs
// finish until the timeout, then cancel whatever is still running and wait
// for it to unwind. The final metrics snapshot is flushed through Logf.
// Drain is idempotent; only the first call does the work.
func (s *Server) Drain(timeout time.Duration) {
	if !s.drainFlag.CompareAndSwap(false, true) {
		return
	}
	close(s.drainCh)
	s.opts.Logf("serve: draining, waiting up to %s for %d running / %d queued requests",
		timeout, s.running.Load(), s.queued.Load())

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.opts.Logf("serve: drain deadline reached, canceling in-flight runs")
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	s.pool.Close()
	if s.journal != nil {
		s.journal.Close()
	}

	snap, _ := json.Marshal(s.Metrics())
	s.opts.Logf("serve: drained; final stats %s", snap)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.drainFlag.Load() }

// runRequest is the POST /run body.
type runRequest struct {
	// Name labels the program in logs; diagnostics use a content hash.
	Name   string `json:"name"`
	Source string `json:"source"`
	// Variant selects the execution model (default "tcf").
	Variant string `json:"variant"`
	// Discipline selects the PRAM memory model for the vet gate and the
	// runtime cross-checker (default "crew" for vet, off at runtime when
	// empty).
	Discipline string `json:"discipline"`
	// Backend selects the step-engine backend ("interp" or "fused"; empty
	// takes the tenant's default).
	Backend string `json:"backend"`
	// Sched selects the step scheduler ("lockstep" or "dataflow"; empty
	// takes the tenant's default).
	Sched string `json:"sched"`
	// Machine shape; zero fields take the variant defaults, capped by the
	// server's MaxGroups/MaxProcs and the tenant's MaxSharedWords.
	Groups      int `json:"groups"`
	Procs       int `json:"procs"`
	SharedWords int `json:"shared_words"`
	// Peek requests shared-memory snapshots in the response.
	Peek []peekRange `json:"peek"`
}

type peekRange struct {
	Addr int64 `json:"addr"`
	N    int   `json:"n"`
}

// maxPeekWords bounds one peek range so responses stay small.
const maxPeekWords = 4096

// runResponse is the /run reply for every outcome; error outcomes carry
// Error/Diagnostics and zero statistics.
type runResponse struct {
	Outcome     string `json:"outcome"`
	Tenant      string `json:"tenant,omitempty"`
	Error       string `json:"error,omitempty"`
	Diagnostics string `json:"diagnostics,omitempty"`

	Steps        int64            `json:"steps,omitempty"`
	Cycles       int64            `json:"cycles,omitempty"`
	StageCycles  map[string]int64 `json:"stage_cycles,omitempty"`
	Outputs      []outputJSON     `json:"outputs,omitempty"`
	Memory       []peekResult     `json:"memory,omitempty"`
	CachedProg   bool             `json:"cached_program"`
	PooledMach   bool             `json:"pooled_machine"`
	WallClock    string           `json:"wall_clock,omitempty"`
	SharedReads  int64            `json:"shared_reads,omitempty"`
	SharedWrites int64            `json:"shared_writes,omitempty"`
}

type outputJSON struct {
	Flow   int     `json:"flow"`
	Step   int64   `json:"step"`
	Values []int64 `json:"values,omitempty"`
	Text   string  `json:"text,omitempty"`
}

type peekResult struct {
	Addr   int64   `json:"addr"`
	Values []int64 `json:"values"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.drainFlag.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleRun is the admission pipeline; execute runs the admitted program.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	// Register with the drain accounting before checking the flag: either
	// Drain's Wait sees this request, or this request sees the flag.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.drainFlag.Load() {
		s.reject(w, http.StatusServiceUnavailable, outcomeDraining, "server is draining", "")
		return
	}

	tenantName := r.Header.Get("X-Tenant")
	if tenantName == "" {
		tenantName = "anon"
	}
	lim := s.limitsFor(tenantName)

	// Request identity (recovery mode only): echo the id — generated when
	// the client sent none — so clients can re-ask for their result after a
	// server crash. A finished id replays its memoized answer; an id still
	// in flight (here or on another connection) is refused, not re-run.
	var runID string
	if s.journal != nil {
		runID = r.Header.Get("X-Request-Id")
		if runID == "" {
			runID = newRunID()
		}
		w.Header().Set("X-Request-Id", runID)
		if done, ok := s.completedResponse(runID); ok {
			s.metrics.replayed.Add(1)
			writeJSON(w, done.status, done.resp)
			return
		}
		if !s.beginRun(runID) {
			s.setRetryAfter(w)
			s.reject(w, http.StatusConflict, outcomeDuplicate,
				fmt.Sprintf("request id %q is already in flight", runID), tenantName)
			return
		}
		defer s.endRun(runID)
	}

	// Decode under a size cap; the JSON envelope gets slack beyond the
	// source cap for escaping and the other fields.
	r.Body = http.MaxBytesReader(w, r.Body, 2*int64(lim.MaxSourceBytes)+4096)
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, http.StatusRequestEntityTooLarge, outcomeTooLarge, "request body too large", tenantName)
			return
		}
		s.reject(w, http.StatusBadRequest, outcomeBadRequest, "malformed JSON: "+err.Error(), tenantName)
		return
	}
	if len(req.Source) > lim.MaxSourceBytes {
		s.reject(w, http.StatusRequestEntityTooLarge, outcomeTooLarge,
			fmt.Sprintf("source is %d bytes, tenant cap is %d", len(req.Source), lim.MaxSourceBytes), tenantName)
		return
	}
	if req.Source == "" {
		s.reject(w, http.StatusBadRequest, outcomeBadRequest, "empty source", tenantName)
		return
	}

	// Per-tenant concurrency cap.
	t := s.tenant(tenantName)
	if n := t.inflight.Add(1); n > int64(lim.MaxInFlight) {
		t.inflight.Add(-1)
		s.setRetryAfter(w)
		s.reject(w, http.StatusTooManyRequests, outcomeTenantBusy,
			fmt.Sprintf("tenant %q already has %d runs in flight", tenantName, lim.MaxInFlight), tenantName)
		return
	}
	defer t.inflight.Add(-1)

	// Global admission: a bounded queue in front of the run slots. Beyond
	// MaxQueue waiters, or past QueueWait, the request is shed.
	if q := s.queued.Add(1); q > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		s.setRetryAfter(w)
		s.reject(w, http.StatusTooManyRequests, outcomeShed, "admission queue full", tenantName)
		return
	}
	queueTimer := time.NewTimer(s.opts.QueueWait)
	defer queueTimer.Stop()
	select {
	case s.slots <- struct{}{}:
	case <-queueTimer.C:
		s.queued.Add(-1)
		s.setRetryAfter(w)
		s.reject(w, http.StatusTooManyRequests, outcomeShed, "no run slot within the queue wait", tenantName)
		return
	case <-s.drainCh:
		s.queued.Add(-1)
		s.reject(w, http.StatusServiceUnavailable, outcomeDraining, "server is draining", tenantName)
		return
	case <-r.Context().Done():
		s.queued.Add(-1)
		s.reject(w, http.StatusRequestTimeout, outcomeDeadline, "client went away while queued", tenantName)
		return
	}
	s.queued.Add(-1)
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		<-s.slots
	}()
	s.metrics.admitted.Add(1)

	// Write-ahead: the accepted request hits the journal before the run
	// starts, so a crash anywhere past this point is recoverable.
	if s.journal != nil {
		err := s.journal.append(&journalRecord{
			Kind: "accept", ID: runID, Tenant: tenantName,
			SrcHash: hashSource(req.Source), Ckpt: s.ckptPath(runID), Req: &req,
		})
		if err != nil {
			s.opts.Logf("serve: journaling accept for %s: %v", runID, err)
			s.reject(w, http.StatusInternalServerError, outcomeInternal, "run journal unavailable", tenantName)
			return
		}
	}

	resp, status := s.runAdmitted(r.Context(), &req, tenantName, lim, runID)
	resp.Tenant = tenantName
	s.metrics.count(resp.Outcome)
	if s.journal != nil {
		s.finishRun(runID, status, resp)
	}
	writeJSON(w, status, resp)
}

// parseRunOptions resolves a request's variant and discipline selections.
// The vet gate defaults to CREW — the analyzer's own default — while the
// runtime cross-checker stays off unless asked for.
func parseRunOptions(req *runRequest) (vk variant.Kind, vetDisc, runDisc mem.Discipline, errResp *runResponse, status int) {
	vk = variant.SingleInstruction
	if req.Variant != "" {
		k, err := variant.ParseKind(req.Variant)
		if err != nil {
			return vk, 0, 0, &runResponse{Outcome: outcomeBadRequest, Error: err.Error()}, http.StatusBadRequest
		}
		vk = k
	}
	vetDisc = mem.DisciplineCREW
	runDisc = mem.DisciplineOff
	if req.Discipline != "" {
		d, err := mem.ParseDiscipline(req.Discipline)
		if err != nil {
			return vk, 0, 0, &runResponse{Outcome: outcomeBadRequest, Error: err.Error()}, http.StatusBadRequest
		}
		vetDisc, runDisc = d, d
	}
	return vk, vetDisc, runDisc, nil, 0
}

// runAdmitted handles the post-admission pipeline: vet gate, config
// validation, pooled execution. runID is non-empty only in recovery mode,
// where it names the run's checkpoint file.
func (s *Server) runAdmitted(reqCtx context.Context, req *runRequest, tenantName string, lim Limits, runID string) (*runResponse, int) {
	vk, vetDisc, runDisc, errResp, status := parseRunOptions(req)
	if errResp != nil {
		return errResp, status
	}

	// Vet gate + single-flight compile, both memoized.
	entry := s.cache.Get(req.Source, vk, vetDisc)
	if entry.rejected {
		outcome, status := outcomeVetRejected, http.StatusUnprocessableEntity
		if entry.frontend {
			outcome, status = outcomeCompileError, http.StatusBadRequest
		}
		return &runResponse{
			Outcome:     outcome,
			Error:       "program rejected before execution",
			Diagnostics: diag.Render(entry.diags),
		}, status
	}
	if entry.err != nil {
		return &runResponse{Outcome: outcomeCompileError, Error: entry.err.Error()}, http.StatusBadRequest
	}

	cfg, errResp, status := s.buildConfig(req, vk, runDisc, lim)
	if errResp != nil {
		return errResp, status
	}

	// Predictive admission: run the static cost analyzer (memoized per
	// program and machine shape on the cache entry) and reject jobs whose
	// provable lower bounds already exceed the tenant's quota — before any
	// machine is pooled. Only exact-or-lower-bound violations reject; an
	// analysis that cannot bound the program admits it and lets the runtime
	// quotas govern as before.
	rep := entry.cost(costParamsFor(cfg))
	if why := predictionOverQuota(rep, lim); why != "" {
		return &runResponse{
			Outcome:     outcomePredictedQuota,
			Error:       why,
			Diagnostics: diag.Render(entry.diags),
		}, http.StatusPreconditionFailed
	}

	lease, err := s.pool.Get(cfg)
	if err != nil {
		return &runResponse{Outcome: outcomeBadRequest, Error: err.Error()}, http.StatusBadRequest
	}
	return s.execute(reqCtx, lease, entry, req, tenantName, lim, diag.Render(entry.diags), rep, runID)
}

// Admission-time analysis budgets: the cost pass runs inline on the request
// path (memoized per program and shape), so its abstract step fuel and lane
// work are kept far below the analyzer's offline defaults. A step-quota
// violation stays provable whenever the quota is below the fuel cap;
// heavier programs simply stay unresolved and fall through to the runtime
// quotas, which is always sound.
const (
	admitMaxSteps    = 1 << 14
	admitMaxLaneWork = 1 << 22
)

// costParamsFor derives cost-analysis parameters from the pooled-machine
// config. MaxThickness is deliberately left unbounded so the prediction
// reports the program's true thickness demand (compared against the quota
// by predictionOverQuota); the abstract step budget is clamped just past
// the tenant's step quota so a violation stays provable without letting the
// analyzer run unboundedly long.
func costParamsFor(cfg machine.Config) analysis.CostParams {
	p := analysis.CostParams{
		Variant:        cfg.Variant,
		Groups:         cfg.Groups,
		ProcsPerGroup:  cfg.ProcsPerGroup,
		SharedWords:    cfg.SharedWords,
		LocalWords:     cfg.LocalWords,
		PipelineDepth:  cfg.PipelineDepth,
		MemLatencyBase: cfg.MemLatencyBase,
		VectorWidth:    cfg.VectorWidth,
		MaxSteps:       admitMaxSteps,
		MaxLaneWork:    admitMaxLaneWork,
	}
	if cfg.MaxSteps > 0 && cfg.MaxSteps < admitMaxSteps {
		p.MaxSteps = cfg.MaxSteps + 1
	}
	return p
}

// predictionOverQuota returns a non-empty reason when the prediction's
// lower bounds prove the run must exceed the tenant's quotas: steps,
// thickness, or distinct shared words referenced. Lower bounds are sound
// for unresolved analyses too, so this never rejects a program the quotas
// could still admit.
func predictionOverQuota(rep *analysis.CostReport, lim Limits) string {
	if rep == nil {
		return ""
	}
	if lim.MaxSteps > 0 && rep.Steps.Min > lim.MaxSteps {
		return fmt.Sprintf("predicted steps %s exceed the tenant quota %d", rep.Steps, lim.MaxSteps)
	}
	if lim.MaxThickness > 0 && rep.MaxThickness.Min > int64(lim.MaxThickness) {
		return fmt.Sprintf("predicted flow thickness %s exceeds the tenant quota %d", rep.MaxThickness, lim.MaxThickness)
	}
	if lim.MaxSharedWords > 0 {
		var words int64
		for _, w := range rep.WordsPerModule {
			words += w
		}
		if words > int64(lim.MaxSharedWords) {
			return fmt.Sprintf("predicted shared-memory footprint %d words exceeds the tenant quota %d", words, lim.MaxSharedWords)
		}
	}
	return ""
}

// buildConfig validates the requested machine shape against the server caps
// and the tenant's quota, returning the pooled-machine configuration.
func (s *Server) buildConfig(req *runRequest, vk variant.Kind, runDisc mem.Discipline, lim Limits) (machine.Config, *runResponse, int) {
	cfg := machine.Default(vk)
	backendName := req.Backend
	if backendName == "" {
		backendName = lim.Backend
	}
	backend, err := machine.ParseBackend(backendName)
	if err != nil {
		return cfg, &runResponse{Outcome: outcomeBadRequest, Error: err.Error()}, http.StatusBadRequest
	}
	cfg.Backend = backend
	schedName := req.Sched
	if schedName == "" {
		schedName = lim.Sched
	}
	sched, err := machine.ParseSched(schedName)
	if err != nil {
		return cfg, &runResponse{Outcome: outcomeBadRequest, Error: err.Error()}, http.StatusBadRequest
	}
	cfg.Sched = sched
	if req.Groups > 0 {
		cfg.Groups = req.Groups
	}
	if req.Procs > 0 {
		cfg.ProcsPerGroup = req.Procs
	}
	if req.SharedWords > 0 {
		cfg.SharedWords = req.SharedWords
	}
	if cfg.Groups > s.opts.MaxGroups || cfg.ProcsPerGroup > s.opts.MaxProcs {
		return cfg, &runResponse{
			Outcome: outcomeBadRequest,
			Error:   fmt.Sprintf("machine shape %d×%d exceeds the server cap %d×%d", cfg.Groups, cfg.ProcsPerGroup, s.opts.MaxGroups, s.opts.MaxProcs),
		}, http.StatusBadRequest
	}
	if cfg.SharedWords > lim.MaxSharedWords {
		return cfg, &runResponse{
			Outcome: outcomeQuota,
			Error:   fmt.Sprintf("shared_words %d exceeds the tenant quota %d", cfg.SharedWords, lim.MaxSharedWords),
		}, http.StatusForbidden
	}
	for _, p := range req.Peek {
		if p.N <= 0 || p.N > maxPeekWords || p.Addr < 0 || p.Addr+int64(p.N) > int64(cfg.SharedWords) {
			return cfg, &runResponse{
				Outcome: outcomeBadRequest,
				Error:   fmt.Sprintf("peek [%d,%d) out of range (max %d words within %d)", p.Addr, p.Addr+int64(p.N), maxPeekWords, cfg.SharedWords),
			}, http.StatusBadRequest
		}
	}
	cfg.MemDiscipline = runDisc
	cfg.WatchdogSteps = s.opts.WatchdogSteps
	if cfg.WatchdogSteps <= 0 {
		cfg.WatchdogSteps = watchdogFor(lim.MaxSteps)
	}
	cfg.MaxSteps = lim.MaxSteps
	cfg.MaxThickness = lim.MaxThickness
	return cfg, nil, 0
}

// watchdogFor derives the no-progress watchdog bound from a tenant's step
// quota: a fraction of MaxSteps so silent livelock dies well before the
// quota, floored so legitimately quiet stretches (long memory stalls,
// combining phases) survive, and capped so huge quotas don't disable it.
func watchdogFor(maxSteps int64) int64 {
	w := maxSteps / 8
	if w < 256 {
		w = 256
	}
	if w > 1<<14 {
		w = 1 << 14
	}
	return w
}

// execute runs the compiled program on the leased machine under the
// tenant's limits. Panics are contained here: the lease is discarded (its
// machine state can't be trusted) and the client gets a 500. In recovery
// mode (runID non-empty) the machine checkpoints itself periodically so a
// process crash can resume the run instead of losing it.
func (s *Server) execute(reqCtx context.Context, lease *Lease, entry *cacheEntry, req *runRequest, tenantName string, lim Limits, diags string, rep *analysis.CostReport, runID string) (resp *runResponse, status int) {
	defer func() {
		if p := recover(); p != nil {
			lease.Discard()
			s.opts.Logf("serve: panic running %q for tenant %q: %v\n%s", req.Name, tenantName, p, debug.Stack())
			resp = &runResponse{Outcome: outcomePanic, Error: fmt.Sprintf("internal panic: %v", p)}
			status = http.StatusInternalServerError
		}
	}()

	m := lease.M
	if err := m.SetLimits(lim.MaxSteps, lim.MaxThickness); err != nil {
		lease.Discard()
		return &runResponse{Outcome: outcomeRuntimeFault, Error: err.Error()}, http.StatusConflict
	}
	if s.journal != nil && runID != "" {
		sink := &checkpoint.FileSink{
			Path:    s.ckptPath(runID),
			OnWrite: func(int64) { s.metrics.checkpoints.Add(1) },
		}
		if err := m.SetCheckpointing(s.opts.CheckpointEverySteps, sink); err != nil {
			lease.Discard()
			return &runResponse{Outcome: outcomeInternal, Error: err.Error()}, http.StatusInternalServerError
		}
		// The checkpoint only matters if this process dies mid-run; once
		// execute returns, finishRun journals the answer and deletes it.
		// (Release → Reset clears the wiring before the machine is pooled.)
	}
	if err := m.LoadProgram(entry.compiled.Program); err != nil {
		lease.Discard()
		return &runResponse{Outcome: outcomeCompileError, Error: err.Error()}, http.StatusBadRequest
	}
	for _, seg := range entry.compiled.LocalData {
		for g := 0; g < m.Config().Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				lease.Discard()
				return &runResponse{Outcome: outcomeBadRequest, Error: err.Error()}, http.StatusBadRequest
			}
		}
	}
	if s.hookLoaded != nil {
		s.hookLoaded(tenantName, req.Name)
	}

	// The run is bounded by the tenant's wall clock and by the drain
	// deadline: when Drain cancels the base context, every in-flight run
	// stops at its next step boundary.
	ctx, cancel := context.WithTimeout(reqCtx, lim.MaxWallClock)
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()

	start := time.Now()
	stats, runErr := m.RunContext(ctx)
	wall := time.Since(start)
	s.metrics.observe(stats)
	s.metrics.observePrediction(rep, stats, runErr)
	s.metrics.runNanos.Add(wall.Nanoseconds())
	s.metrics.runsMeasured.Add(1)

	if runErr != nil {
		lease.Release()
		outcome, code := mapRunError(runErr, s.baseCtx)
		return &runResponse{
			Outcome:     outcome,
			Error:       runErr.Error(),
			Diagnostics: diags,
			WallClock:   wall.String(),
		}, code
	}

	resp = s.okResponse(m, stats, req, lease.Pooled, wall, diags)
	lease.Release()
	return resp, http.StatusOK
}

// okResponse assembles the successful /run reply from a finished machine.
func (s *Server) okResponse(m *machine.Machine, stats *machine.Stats, req *runRequest, pooled bool, wall time.Duration, diags string) *runResponse {
	resp := &runResponse{
		Outcome:      outcomeOK,
		Diagnostics:  diags, // warnings from the vet gate, if any
		Steps:        stats.Steps,
		Cycles:       stats.Cycles,
		StageCycles:  make(map[string]int64, machine.NumStages),
		CachedProg:   true, // single-flight: every response came through the cache
		PooledMach:   pooled,
		WallClock:    wall.String(),
		SharedReads:  stats.SharedReads,
		SharedWrites: stats.SharedWrites,
	}
	for i := range stats.Stages {
		resp.StageCycles[machine.Stage(i).String()] = stats.Stages[i].Cycles
	}
	for _, o := range m.Outputs() {
		resp.Outputs = append(resp.Outputs, outputJSON{
			Flow: o.Flow, Step: o.Step,
			Values: append([]int64(nil), o.Values...),
			Text:   o.Text,
		})
	}
	for _, p := range req.Peek {
		resp.Memory = append(resp.Memory, peekResult{Addr: p.Addr, Values: m.Shared().Snapshot(p.Addr, p.N)})
	}
	return resp
}

// mapRunError translates the machine's error taxonomy into an outcome and
// HTTP status: quota violations are the tenant's fault (403), deadline and
// client cancellation are 408, drain cancellation is 503, everything else
// is a program fault (409).
func mapRunError(err error, baseCtx context.Context) (string, int) {
	switch {
	case errors.Is(err, machine.ErrMaxSteps) || errors.Is(err, machine.ErrThicknessLimit):
		return outcomeQuota, http.StatusForbidden
	case errors.Is(err, machine.ErrCanceled):
		if baseCtx.Err() != nil {
			return outcomeDraining, http.StatusServiceUnavailable
		}
		return outcomeDeadline, http.StatusRequestTimeout
	default:
		// ErrDeadlock, ErrDisciplineViolation, ErrFaultUnrecoverable and
		// plain program faults.
		return outcomeRuntimeFault, http.StatusConflict
	}
}

// retryAfterSecs derives the back-off hint from the current backlog and the
// recent mean run time: with Q requests queued, R running and C slots, a new
// arrival waits roughly (Q+R+1)·mean/C seconds for a slot. The hint is
// monotone in the backlog, floored at 1s and capped at 60s; before any run
// has finished, a conservative default mean is used.
func (s *Server) retryAfterSecs() int {
	mean := 500 * time.Millisecond
	if n := s.metrics.runsMeasured.Load(); n > 0 {
		mean = time.Duration(s.metrics.runNanos.Load() / n)
		if mean < time.Millisecond {
			mean = time.Millisecond
		}
	}
	backlog := s.queued.Load() + s.running.Load() + 1
	wait := time.Duration(backlog) * mean / time.Duration(s.opts.MaxConcurrent)
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
}

func (s *Server) reject(w http.ResponseWriter, status int, outcome, msg, tenant string) {
	s.metrics.count(outcome)
	writeJSON(w, status, &runResponse{Outcome: outcome, Error: msg, Tenant: tenant})
}

func (s *Server) limitsFor(tenant string) Limits {
	if l, ok := s.opts.Tenants[tenant]; ok {
		return l.withDefaults(s.opts.DefaultLimits)
	}
	return s.opts.DefaultLimits
}

func (s *Server) tenant(name string) *tenantState {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantState{}
		s.tenants[name] = t
	}
	return t
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// RetryAfter parses a response's Retry-After header (helper for clients and
// tests).
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
