package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg lays out a throwaway package directory from name→source pairs.
func writePkg(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func rules(fs []Finding) []string {
	var rs []string
	for _, f := range fs {
		rs = append(rs, f.Rule)
	}
	return rs
}

func TestRangeOverMap(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

func sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "range-over-map" {
		t.Fatalf("findings %v, want one range-over-map", fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Fatalf("finding at line %d, want 5", fs[0].Pos.Line)
	}
	if !strings.Contains(fs[0].Msg, "m (map[string]int)") {
		t.Fatalf("message %q does not name the ranged map", fs[0].Msg)
	}
}

// Keyless `for range m` observes only len(m), never the order, so it is
// deterministic and must not be flagged.
func TestKeylessMapRangeAllowed(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

func count(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("keyless map range flagged: %v", fs)
	}
}

func TestSliceAndChannelRangesAllowed(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

func f(xs []int, ch chan int, s string) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	for x := range ch {
		t += x
	}
	for _, r := range s {
		t += int(r)
	}
	for i := range 4 {
		t += i
	}
	return t
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("non-map ranges flagged: %v", fs)
	}
}

func TestTimeNow(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

import "time"

func stamp() (int64, time.Duration) {
	start := time.Now()
	return start.UnixNano(), time.Since(start)
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := rules(fs)
	if len(got) != 2 || got[0] != "time-now" || got[1] != "time-now" {
		t.Fatalf("findings %v, want two time-now", fs)
	}
}

// A local variable named time shadows the package; selecting on it is fine.
func TestTimeShadowNotFlagged(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

type clock struct{ Now func() int64 }

func f() int64 {
	time := clock{Now: func() int64 { return 0 }}
	return time.Now()
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("shadowed time flagged: %v", fs)
	}
}

func TestMathRandImport(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

import "math/rand"

func f() int { return rand.Int() }
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "math-rand" {
		t.Fatalf("findings %v, want one math-rand", fs)
	}
}

func TestIgnoreDirective(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

func f(m map[int]int) int {
	s := 0
	//detlint:ignore addition is commutative
	for _, v := range m {
		s += v
	}
	for _, v := range m { //detlint:ignore same line form
		s += v
	}
	for _, v := range m {
		s += v
	}
	return s
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Pos.Line != 12 {
		t.Fatalf("findings %v, want only the unsuppressed range at line 12", fs)
	}
}

// Test files assert on results rather than producing them, so they are out
// of scope even when they contain banned constructs.
func TestTestFilesSkipped(t *testing.T) {
	dir := writePkg(t, map[string]string{
		"a.go": "package a\n",
		"a_test.go": `package a

import "time"

var when = time.Now()
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("test file linted: %v", fs)
	}
}

// Imports the lenient importer cannot resolve must degrade to silence, not
// errors or false positives.
func TestUnresolvableImportStaysQuiet(t *testing.T) {
	dir := writePkg(t, map[string]string{"a.go": `package a

import "example.com/nonexistent/pkg"

func f() {
	for _, v := range pkg.Table {
		_ = v
	}
}
`})
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("unresolvable-import range flagged: %v", fs)
	}
}

// TestEnginePackagesClean is the repo gate: the four deterministic packages
// must lint clean (modulo their reviewed //detlint:ignore annotations).
func TestEnginePackagesClean(t *testing.T) {
	for _, rel := range []string{"machine", "mem", "fuse", "multiop"} {
		dir := filepath.Join("..", rel)
		fs, err := Package(dir)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, f := range fs {
			t.Errorf("%s", f)
		}
	}
}
