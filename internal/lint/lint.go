// Package lint implements detlint, a determinism linter for the engine
// packages. The machine simulator's contract is bit-identical replay:
// identical programs and configs must produce identical Stats, outputs and
// snapshots across runs, backends and schedulers. Three Go constructs break
// that silently, so they are banned from the deterministic packages:
//
//   - ranging over a map with iteration variables (Go randomizes map
//     iteration order per run);
//   - time.Now / time.Since (wall-clock values leaking into results);
//   - importing math/rand or math/rand/v2 (unseeded, or seeded-by-time,
//     process-global randomness).
//
// A finding is suppressed by a "//detlint:ignore <reason>" comment on the
// same line or the line directly above — for map ranges whose body is
// provably order-insensitive (commutative folds), with the reason recorded
// in the source.
//
// The linter is stdlib-only (go/parser + go/types): same-package types
// resolve fully, stdlib and module-internal imports resolve from source,
// and anything else degrades to an empty package — expressions whose type
// then stays unknown are skipped, never reported. That keeps the tool free
// of golang.org/x/tools while staying precise on every map the engine
// actually iterates, including ones returned across package boundaries
// (e.g. multiop.Resolve's finals map).
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	Pos  token.Position
	Rule string // "range-over-map", "time-now", "math-rand"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Msg, f.Rule)
}

// ignoreDirective marks a line whose findings are suppressed.
const ignoreDirective = "//detlint:ignore"

// Package lints every non-test .go file in dir and returns the findings in
// file/position order. Test files are exempt: they assert on results, they
// do not produce them.
func Package(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: newLenientImporter(fset, dir),
		// Unresolvable imports make some expressions untypeable; those are
		// skipped below, so type errors must not abort the lint.
		Error: func(error) {},
	}
	// Check can also fail wholesale; the partial info is still usable.
	_, _ = conf.Check(dir, fset, files, info)

	var findings []Finding
	for _, f := range files {
		ignored := ignoredLines(fset, f)
		findings = append(findings, lintFile(fset, f, info, ignored)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}

// Packages lints several directories, concatenating the findings.
func Packages(dirs []string) ([]Finding, error) {
	var all []Finding
	for _, dir := range dirs {
		fs, err := Package(dir)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// ignoredLines collects the lines covered by detlint:ignore directives: the
// directive's own line and the one below it.
func ignoredLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, ignoreDirective) {
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}

func lintFile(fset *token.FileSet, f *ast.File, info *types.Info, ignored map[int]bool) []Finding {
	var findings []Finding
	report := func(pos token.Pos, rule, format string, args ...any) {
		p := fset.Position(pos)
		if ignored[p.Line] {
			return
		}
		findings = append(findings, Finding{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}

	for _, imp := range f.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "math/rand", "math/rand/v2":
			report(imp.Pos(), "math-rand",
				"import of %s in a deterministic package: map-seeded or global randomness breaks bit-identical replay", imp.Path.Value)
		}
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// `for range m` observes no iteration order; anything binding a
			// key or value does.
			if n.Key == nil && n.Value == nil {
				return true
			}
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				return true // type unknown (foreign import): stay quiet
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				report(n.Pos(), "range-over-map",
					"range over map %s: iteration order is randomized per run; iterate sorted keys or prove the body commutative (//detlint:ignore <why>)",
					typeLabel(n.X, tv.Type))
			}
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			if !identIsPackage(id, "time", info) {
				return true
			}
			switch n.Sel.Name {
			case "Now", "Since", "Until":
				report(n.Pos(), "time-now",
					"time.%s in a deterministic package: wall-clock values must not reach simulated state", n.Sel.Name)
			}
		}
		return true
	})
	return findings
}

// identIsPackage reports whether id names the import of path. Type info
// settles shadowing when available; otherwise the import table decides.
func identIsPackage(id *ast.Ident, path string, info *types.Info) bool {
	if obj, ok := info.Uses[id]; ok {
		pn, ok := obj.(*types.PkgName)
		return ok && pn.Imported().Path() == path
	}
	return id.Name == filepath.Base(path)
}

func typeLabel(x ast.Expr, t types.Type) string {
	if id, ok := x.(*ast.Ident); ok {
		return fmt.Sprintf("%s (%s)", id.Name, t)
	}
	return t.String()
}

// parseDir parses the non-test .go files of one package directory.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// lenientImporter resolves stdlib packages and module-internal packages
// from source, and fabricates empty packages for everything else (external
// modules, cgo). Expressions depending on a fabricated package simply stay
// untyped. Resolving module siblings matters: maps crossing a package
// boundary (multiop.Resolve's finals) would otherwise hide from the
// range-over-map rule.
type lenientImporter struct {
	fset    *token.FileSet
	src     types.Importer
	cache   map[string]*types.Package
	modPath string // module path from go.mod, "" if none found
	modRoot string // directory holding go.mod
}

func newLenientImporter(fset *token.FileSet, dir string) *lenientImporter {
	l := &lenientImporter{
		fset:  fset,
		src:   importer.ForCompiler(fset, "source", nil),
		cache: map[string]*types.Package{},
	}
	l.modPath, l.modRoot = findModule(dir)
	return l
}

// findModule walks up from dir to the enclosing go.mod and returns its
// module path and root directory.
func findModule(dir string) (path, root string) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), d
				}
			}
			return "", ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

func (l *lenientImporter) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if p := l.importModuleLocal(path); p != nil {
		l.cache[path] = p
		return p, nil
	}
	if l.src != nil && isStdlibShaped(path) {
		if p, err := l.src.Import(path); err == nil {
			l.cache[path] = p
			return p, nil
		}
	}
	p := types.NewPackage(path, filepath.Base(path))
	p.MarkComplete()
	l.cache[path] = p
	return p, nil
}

// importModuleLocal type-checks a module-internal import path from source,
// reusing this importer for its own imports. Go forbids import cycles, so
// the recursion terminates; any failure returns nil and the caller
// fabricates an empty package instead.
func (l *lenientImporter) importModuleLocal(path string) *types.Package {
	if l.modPath == "" || (path != l.modPath && !strings.HasPrefix(path, l.modPath+"/")) {
		return nil
	}
	dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
	files, err := parseDir(l.fset, dir)
	if err != nil || len(files) == 0 {
		return nil
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	// A partially-checked package is still better than a fabricated empty
	// one, so the error is deliberately dropped.
	pkg, _ := conf.Check(path, l.fset, files, nil)
	return pkg
}

// isStdlibShaped filters paths worth handing to the source importer: no
// module domain (stdlib paths have no dot in the first element).
func isStdlibShaped(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
