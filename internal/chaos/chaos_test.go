// Package chaos is the fault-injection equivalence harness: every tcf-e
// corpus program must produce bit-identical results under any recoverable
// fault plan — faults may only cost cycles. This is the system-level
// guarantee behind internal/fault; the per-layer mechanics are tested in
// internal/network, internal/mem and internal/machine.
package chaos

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tcfpram/internal/codegen"
	"tcfpram/internal/fault"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// snapshotWords bounds the shared-memory prefix compared between runs; the
// corpus allocates all of its data well below this.
const snapshotWords = 4096

// corpusFiles returns every tcf-e corpus program, sorted.
func corpusFiles(tb testing.TB) []string {
	tb.Helper()
	files, err := filepath.Glob(filepath.Join("..", "codegen", "testdata", "*.te"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(files) < 10 {
		tb.Fatalf("corpus too small: %d programs", len(files))
	}
	return files
}

// result is everything observable about one run: printed values and the
// shared-memory image. Cycle counts deliberately excluded.
type result struct {
	outputs []int64
	memory  []int64
}

// run executes one compiled corpus program under the given plan (nil = fault
// free) and returns its observable result plus the statistics.
func run(tb testing.TB, c *codegen.Compiled, kind variant.Kind, plan *fault.Plan) (result, *machine.Stats) {
	tb.Helper()
	return runCfg(tb, c, kind, plan, nil)
}

// runCfg is run with an extra configuration hook applied before the machine
// is built.
func runCfg(tb testing.TB, c *codegen.Compiled, kind variant.Kind, plan *fault.Plan, tweak func(*machine.Config)) (result, *machine.Stats) {
	tb.Helper()
	cfg := machine.Default(kind)
	cfg.FaultPlan = plan
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.LoadProgram(c.Program); err != nil {
		tb.Fatal(err)
	}
	for _, seg := range c.LocalData {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if _, err := m.Run(); err != nil {
		tb.Fatalf("%v under plan %+v: %v", kind, plan, err)
	}
	var r result
	for _, o := range m.Outputs() {
		r.outputs = append(r.outputs, o.Values...)
	}
	r.memory = m.Shared().Snapshot(0, snapshotWords)
	return r, m.Stats()
}

func compile(tb testing.TB, file string) *codegen.Compiled {
	tb.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := codegen.CompileSource(file, string(src))
	if err != nil {
		tb.Fatalf("compile %s: %v", file, err)
	}
	return c
}

// TestChaosEquivalence is the degradation invariant: every corpus program,
// on every lockstep-comparable variant, under several distinct recoverable
// fault plans, produces exactly the fault-free outputs and memory image.
// Only cycle counts may differ — and the recovery counters must show the
// faults actually fired.
func TestChaosEquivalence(t *testing.T) {
	kinds := []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}
	groups := machine.Default(variant.SingleInstruction).Groups
	plans := []*fault.Plan{
		fault.Random(1, groups, groups),
		fault.Random(2, groups, groups),
		fault.Random(3, groups, groups),
	}
	var retransmits, reroutes, failovers, extraCycles int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for _, kind := range kinds {
				clean, cleanStats := run(t, c, kind, nil)
				for i, plan := range plans {
					faulty, stats := run(t, c, kind, plan)
					if !reflect.DeepEqual(clean.outputs, faulty.outputs) {
						t.Fatalf("%v plan %d: outputs diverged:\nclean  %v\nfaulty %v",
							kind, i, clean.outputs, faulty.outputs)
					}
					if !reflect.DeepEqual(clean.memory, faulty.memory) {
						t.Fatalf("%v plan %d: shared memory diverged", kind, i)
					}
					retransmits += stats.Retransmits
					reroutes += stats.Reroutes
					failovers += stats.Failovers
					extraCycles += stats.Cycles - cleanStats.Cycles
				}
			}
		})
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions across the whole chaos sweep; plans injected nothing")
	}
	if reroutes == 0 {
		t.Fatal("no re-routes across the whole chaos sweep; route faults never fired")
	}
	if failovers == 0 {
		t.Fatal("no module failovers across the whole chaos sweep; fail-stop faults never fired")
	}
	if extraCycles <= 0 {
		t.Fatal("faults cost no cycles in aggregate; recovery is suspiciously free")
	}
}

// TestChaosLaneParallelDifferential proves the pooled step engine with lane
// chunking forced on (threshold 1 splits every sliceable thick instruction)
// is bit-identical to the serial engine on every corpus program — with and
// without recoverable fault plans, so chunk-level refSeq bases reproduce the
// serial fault-decision stream exactly.
func TestChaosLaneParallelDifferential(t *testing.T) {
	groups := machine.Default(variant.SingleInstruction).Groups
	plans := []*fault.Plan{
		nil,
		fault.Random(1, groups, groups),
		fault.Random(2, groups, groups),
	}
	laneParallel := func(c *machine.Config) {
		c.Parallel = true
		c.LaneParallelThreshold = 1
	}
	var laneChunks int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for i, plan := range plans {
				serial, serialStats := run(t, c, variant.SingleInstruction, plan)
				par, parStats := runCfg(t, c, variant.SingleInstruction, plan, laneParallel)
				if !reflect.DeepEqual(serial.outputs, par.outputs) {
					t.Fatalf("plan %d: outputs diverged:\nserial   %v\nparallel %v",
						i, serial.outputs, par.outputs)
				}
				if !reflect.DeepEqual(serial.memory, par.memory) {
					t.Fatalf("plan %d: shared memory diverged", i)
				}
				// All model-level statistics must match; only the wall-clock
				// chunk counter may differ between the two engines.
				laneChunks += parStats.LaneChunks
				a, b := *serialStats, *parStats
				a.LaneChunks, b.LaneChunks = 0, 0
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("plan %d: stats diverged:\nserial   %+v\nparallel %+v", i, a, b)
				}
			}
		})
	}
	if laneChunks == 0 {
		t.Fatal("lane chunking never engaged across the corpus; the differential proved nothing")
	}
}

// TestChaosDeterminism re-runs one program under the same plan and demands
// identical statistics: fault injection is a pure function of the seed.
func TestChaosDeterminism(t *testing.T) {
	files := corpusFiles(t)
	groups := machine.Default(variant.SingleInstruction).Groups
	c := compile(t, files[0])
	plan := fault.Random(7, groups, groups)
	_, a := run(t, c, variant.SingleInstruction, plan)
	_, b := run(t, c, variant.SingleInstruction, plan)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan, different stats:\n%+v\n%+v", a, b)
	}
}

// FuzzChaos fuzzes the equivalence invariant over (plan seed, program):
// any recoverable random plan on any corpus program must reproduce the
// fault-free result exactly.
func FuzzChaos(f *testing.F) {
	files := corpusFiles(f)
	compiled := make([]*codegen.Compiled, len(files))
	for i, file := range files {
		compiled[i] = compile(f, file)
	}
	clean := make([]result, len(files))
	for i := range compiled {
		clean[i], _ = run(f, compiled[i], variant.SingleInstruction, nil)
	}
	groups := machine.Default(variant.SingleInstruction).Groups

	for seed := int64(0); seed < 4; seed++ {
		for idx := 0; idx < len(files); idx += 5 {
			f.Add(seed, idx)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, idx int) {
		if idx < 0 {
			idx = -(idx + 1)
		}
		idx %= len(files)
		plan := fault.Random(seed, groups, groups)
		faulty, _ := run(t, compiled[idx], variant.SingleInstruction, plan)
		if !reflect.DeepEqual(clean[idx].outputs, faulty.outputs) {
			t.Fatalf("%s seed %d: outputs diverged:\nclean  %v\nfaulty %v",
				files[idx], seed, clean[idx].outputs, faulty.outputs)
		}
		if !reflect.DeepEqual(clean[idx].memory, faulty.memory) {
			t.Fatalf("%s seed %d: shared memory diverged", files[idx], seed)
		}
	})
}
