package chaos

import (
	"path/filepath"
	"reflect"
	"testing"

	"tcfpram/internal/fault"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

func dataflowSched(c *machine.Config) { c.Sched = machine.SchedDataflow }

// TestDataflowSchedulerDifferential is the oracle check of the dataflow
// scheduler at the corpus level: every tcf-e program, under every variant
// policy, on both backends, produces outputs, a shared-memory image and
// complete model statistics bit-identical to the lockstep engine's.
func TestDataflowSchedulerDifferential(t *testing.T) {
	backends := []struct {
		name  string
		tweak func(*machine.Config)
	}{
		{"interp", func(c *machine.Config) {}},
		{"fused", fusedBackend},
	}
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for _, kind := range allKinds {
				for _, be := range backends {
					withDF := func(cfg *machine.Config) {
						be.tweak(cfg)
						dataflowSched(cfg)
					}
					lock, lockStats, lockErr := runLoose(t, c, kind, be.tweak)
					df, dfStats, dfErr := runLoose(t, c, kind, withDF)
					if errString(lockErr) != errString(dfErr) {
						t.Fatalf("%v/%s: run errors diverged:\nlockstep %v\ndataflow %v",
							kind, be.name, lockErr, dfErr)
					}
					if !reflect.DeepEqual(lock.outputs, df.outputs) {
						t.Fatalf("%v/%s: outputs diverged:\nlockstep %v\ndataflow %v",
							kind, be.name, lock.outputs, df.outputs)
					}
					if !reflect.DeepEqual(lock.memory, df.memory) {
						t.Fatalf("%v/%s: shared memory diverged", kind, be.name)
					}
					if !reflect.DeepEqual(*lockStats, *dfStats) {
						t.Fatalf("%v/%s: stats diverged:\nlockstep %+v\ndataflow %+v",
							kind, be.name, *lockStats, *dfStats)
					}
				}
			}
		})
	}
}

// TestDataflowChaosDifferential runs the corpus under recoverable fault plans
// with the dataflow scheduler: fault plans force strict stepping, and the
// fault decisions (keyed off per-reference sequence numbers) must reproduce
// the lockstep stream exactly — identical retransmit/reroute/failover
// counters prove it.
func TestDataflowChaosDifferential(t *testing.T) {
	kinds := []variant.Kind{variant.SingleInstruction, variant.Balanced}
	groups := machine.Default(variant.SingleInstruction).Groups
	plans := []*fault.Plan{
		fault.Random(1, groups, groups),
		fault.Random(2, groups, groups),
	}
	var retransmits int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for _, kind := range kinds {
				for i, plan := range plans {
					lock, lockStats := run(t, c, kind, plan)
					df, dfStats := runCfg(t, c, kind, plan, dataflowSched)
					if !reflect.DeepEqual(lock.outputs, df.outputs) {
						t.Fatalf("%v plan %d: outputs diverged:\nlockstep %v\ndataflow %v",
							kind, i, lock.outputs, df.outputs)
					}
					if !reflect.DeepEqual(lock.memory, df.memory) {
						t.Fatalf("%v plan %d: shared memory diverged", kind, i)
					}
					if !reflect.DeepEqual(*lockStats, *dfStats) {
						t.Fatalf("%v plan %d: stats diverged:\nlockstep %+v\ndataflow %+v",
							kind, i, *lockStats, *dfStats)
					}
					retransmits += dfStats.Retransmits
				}
			}
		})
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions across the dataflow chaos sweep; plans injected nothing")
	}
}

// TestDataflowLaneParallelDifferential stacks all three concurrency layers —
// dataflow group run-ahead, the pooled step engine, and lane chunking — and
// demands bit-identity against the fully serial lockstep engine.
func TestDataflowLaneParallelDifferential(t *testing.T) {
	stacked := func(c *machine.Config) {
		c.Parallel = true
		c.LaneParallelThreshold = 1
		dataflowSched(c)
	}
	var laneChunks int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			serial, serialStats := run(t, c, variant.SingleInstruction, nil)
			df, dfStats := runCfg(t, c, variant.SingleInstruction, nil, stacked)
			if !reflect.DeepEqual(serial.outputs, df.outputs) {
				t.Fatalf("outputs diverged:\nserial   %v\nstacked  %v", serial.outputs, df.outputs)
			}
			if !reflect.DeepEqual(serial.memory, df.memory) {
				t.Fatal("shared memory diverged")
			}
			// Only the wall-clock chunk counter may differ between the
			// serial and chunked engines.
			laneChunks += dfStats.LaneChunks
			a, b := *serialStats, *dfStats
			a.LaneChunks, b.LaneChunks = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("stats diverged:\nserial  %+v\nstacked %+v", a, b)
			}
		})
	}
	if laneChunks == 0 {
		t.Fatal("lane chunking never engaged under the stacked engines; the differential proved nothing")
	}
}
