package chaos

import (
	"path/filepath"
	"reflect"
	"testing"

	"tcfpram/internal/codegen"
	"tcfpram/internal/fault"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// allKinds is every execution variant: the fused backend must be
// bit-identical to the interpreter under all six policies.
var allKinds = []variant.Kind{
	variant.SingleInstruction,
	variant.Balanced,
	variant.MultiInstruction,
	variant.SingleOperation,
	variant.ConfigurableSingleOperation,
	variant.FixedThickness,
}

func fusedBackend(c *machine.Config) { c.Backend = machine.BackendFused }

// runLoose is runCfg without the fatal-on-error policy: a variant legally
// rejecting a program (SETTHICK on a fixed thread set, SPLIT without control
// parallelism) is itself an observable outcome the two backends must agree
// on, message for message.
func runLoose(tb testing.TB, c *codegen.Compiled, kind variant.Kind, tweak func(*machine.Config)) (result, *machine.Stats, error) {
	tb.Helper()
	cfg := machine.Default(kind)
	if tweak != nil {
		tweak(&cfg)
	}
	m, err := machine.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.LoadProgram(c.Program); err != nil {
		tb.Fatal(err)
	}
	for _, seg := range c.LocalData {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				tb.Fatal(err)
			}
		}
	}
	_, runErr := m.Run()
	var r result
	for _, o := range m.Outputs() {
		r.outputs = append(r.outputs, o.Values...)
	}
	r.memory = m.Shared().Snapshot(0, snapshotWords)
	return r, m.Stats(), runErr
}

// errString renders a run error for comparison (empty = success).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestFusedBackendDifferential is the oracle check of the fused backend:
// every corpus program, under every variant policy, produces outputs, a
// shared-memory image and complete model statistics bit-identical to the
// interpreter's.
func TestFusedBackendDifferential(t *testing.T) {
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for _, kind := range allKinds {
				interp, interpStats, interpErr := runLoose(t, c, kind, nil)
				fused, fusedStats, fusedErr := runLoose(t, c, kind, fusedBackend)
				if errString(interpErr) != errString(fusedErr) {
					t.Fatalf("%v: run errors diverged:\ninterp %v\nfused  %v",
						kind, interpErr, fusedErr)
				}
				if !reflect.DeepEqual(interp.outputs, fused.outputs) {
					t.Fatalf("%v: outputs diverged:\ninterp %v\nfused  %v",
						kind, interp.outputs, fused.outputs)
				}
				if !reflect.DeepEqual(interp.memory, fused.memory) {
					t.Fatalf("%v: shared memory diverged", kind)
				}
				if !reflect.DeepEqual(*interpStats, *fusedStats) {
					t.Fatalf("%v: stats diverged:\ninterp %+v\nfused  %+v",
						kind, *interpStats, *fusedStats)
				}
			}
		})
	}
}

// TestFusedChaosDifferential runs the corpus under recoverable fault plans on
// both backends: fault decisions key off per-reference sequence numbers, so
// identical statistics (retransmits, reroutes, stall cycles) prove the fused
// backend issues exactly the interpreter's reference stream.
func TestFusedChaosDifferential(t *testing.T) {
	kinds := []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}
	groups := machine.Default(variant.SingleInstruction).Groups
	plans := []*fault.Plan{
		fault.Random(1, groups, groups),
		fault.Random(2, groups, groups),
	}
	var retransmits int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for _, kind := range kinds {
				for i, plan := range plans {
					interp, interpStats := run(t, c, kind, plan)
					fused, fusedStats := runCfg(t, c, kind, plan, fusedBackend)
					if !reflect.DeepEqual(interp.outputs, fused.outputs) {
						t.Fatalf("%v plan %d: outputs diverged:\ninterp %v\nfused  %v",
							kind, i, interp.outputs, fused.outputs)
					}
					if !reflect.DeepEqual(interp.memory, fused.memory) {
						t.Fatalf("%v plan %d: shared memory diverged", kind, i)
					}
					if !reflect.DeepEqual(*interpStats, *fusedStats) {
						t.Fatalf("%v plan %d: stats diverged:\ninterp %+v\nfused  %+v",
							kind, i, *interpStats, *fusedStats)
					}
					retransmits += fusedStats.Retransmits
				}
			}
		})
	}
	if retransmits == 0 {
		t.Fatal("no retransmissions across the fused chaos sweep; plans injected nothing")
	}
}

// TestFusedLaneParallelDifferential forces lane chunking on (threshold 1)
// under the fused backend and demands bit-identical results and statistics
// against the interpreter with the same chunking — including the LaneChunks
// counter itself: both backends must make the same fan-out decisions.
func TestFusedLaneParallelDifferential(t *testing.T) {
	laneParallel := func(c *machine.Config) {
		c.Parallel = true
		c.LaneParallelThreshold = 1
	}
	both := func(c *machine.Config) {
		laneParallel(c)
		fusedBackend(c)
	}
	var laneChunks int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			interp, interpStats := runCfg(t, c, variant.SingleInstruction, nil, laneParallel)
			fused, fusedStats := runCfg(t, c, variant.SingleInstruction, nil, both)
			if !reflect.DeepEqual(interp.outputs, fused.outputs) {
				t.Fatalf("outputs diverged:\ninterp %v\nfused  %v", interp.outputs, fused.outputs)
			}
			if !reflect.DeepEqual(interp.memory, fused.memory) {
				t.Fatal("shared memory diverged")
			}
			if !reflect.DeepEqual(*interpStats, *fusedStats) {
				t.Fatalf("stats diverged:\ninterp %+v\nfused  %+v", *interpStats, *fusedStats)
			}
			laneChunks += fusedStats.LaneChunks
		})
	}
	if laneChunks == 0 {
		t.Fatal("lane chunking never engaged under the fused backend; the differential proved nothing")
	}
}

// FuzzFusedVsInterp fuzzes the backend-equivalence invariant over (program,
// variant, chunking): any corpus program on any variant must produce
// bit-identical outputs, memory and statistics on both backends.
func FuzzFusedVsInterp(f *testing.F) {
	files := corpusFiles(f)
	for idx := 0; idx < len(files); idx += 3 {
		for k := range allKinds {
			f.Add(idx, k, false)
		}
		f.Add(idx, 0, true)
	}
	f.Fuzz(func(t *testing.T, idx, kindIdx int, laneParallel bool) {
		if idx < 0 {
			idx = -(idx + 1)
		}
		idx %= len(files)
		if kindIdx < 0 {
			kindIdx = -(kindIdx + 1)
		}
		kind := allKinds[kindIdx%len(allKinds)]
		c := compile(t, files[idx])
		tweak := func(cfg *machine.Config) {
			if laneParallel {
				cfg.Parallel = true
				cfg.LaneParallelThreshold = 1
			}
		}
		withFused := func(cfg *machine.Config) {
			tweak(cfg)
			fusedBackend(cfg)
		}
		interp, interpStats, interpErr := runLoose(t, c, kind, tweak)
		fused, fusedStats, fusedErr := runLoose(t, c, kind, withFused)
		if errString(interpErr) != errString(fusedErr) {
			t.Fatalf("%s %v: run errors diverged:\ninterp %v\nfused  %v",
				files[idx], kind, interpErr, fusedErr)
		}
		if !reflect.DeepEqual(interp.outputs, fused.outputs) {
			t.Fatalf("%s %v: outputs diverged:\ninterp %v\nfused  %v",
				files[idx], kind, interp.outputs, fused.outputs)
		}
		if !reflect.DeepEqual(interp.memory, fused.memory) {
			t.Fatalf("%s %v: shared memory diverged", files[idx], kind)
		}
		if !reflect.DeepEqual(*interpStats, *fusedStats) {
			t.Fatalf("%s %v: stats diverged:\ninterp %+v\nfused  %+v",
				files[idx], kind, *interpStats, *fusedStats)
		}
	})
}
