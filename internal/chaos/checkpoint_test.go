package chaos

import (
	"bytes"
	"hash/fnv"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"tcfpram/internal/codegen"
	"tcfpram/internal/fault"
	"tcfpram/internal/machine"
	"tcfpram/internal/variant"
)

// killPoints picks deterministic pseudo-random step boundaries inside the
// run, seeded from the scenario name so every `go test` kills at the same
// places (reproducible failures) while still spreading kills across the run.
func killPoints(name string, totalSteps int64, n int) []int64 {
	if totalSteps <= 1 {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	points := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		points = append(points, 1+rng.Int63n(totalSteps-1))
	}
	return points
}

// buildRun constructs a machine for one corpus program (local data segments
// loaded) without running it.
func buildRun(tb testing.TB, c *codegen.Compiled, cfg machine.Config) *machine.Machine {
	tb.Helper()
	m, err := machine.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.LoadProgram(c.Program); err != nil {
		tb.Fatal(err)
	}
	for _, seg := range c.LocalData {
		for g := 0; g < cfg.Groups; g++ {
			if err := m.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return m
}

// resultOf extracts the observable result of a finished machine.
func resultOf(m *machine.Machine) result {
	var r result
	for _, o := range m.Outputs() {
		r.outputs = append(r.outputs, o.Values...)
	}
	r.memory = m.Shared().Snapshot(0, snapshotWords)
	return r
}

// runKilled executes the program up to the kill step, serializes the machine,
// discards it, restores from the snapshot bytes, and runs the restored
// machine to completion — the crash-recovery path end to end.
func runKilled(tb testing.TB, c *codegen.Compiled, cfg machine.Config, kill int64) (result, *machine.Stats) {
	tb.Helper()
	m := buildRun(tb, c, cfg)
	if err := m.Boot(); err != nil {
		tb.Fatal(err)
	}
	for m.Stats().Steps < kill && !m.Done() {
		if err := m.Step(); err != nil {
			tb.Fatalf("step %d: %v", m.Stats().Steps, err)
		}
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		tb.Fatalf("snapshot at step %d: %v", m.Stats().Steps, err)
	}
	r, err := machine.Restore(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		tb.Fatalf("restore at step %d: %v", kill, err)
	}
	if _, err := r.Run(); err != nil {
		tb.Fatalf("resumed run (killed at %d): %v", kill, err)
	}
	return resultOf(r), r.Stats()
}

// TestChaosKillAndResumeDifferential is the crash-recovery invariant: for
// every corpus program, on every lockstep variant, with and without
// recoverable fault plans, killing the machine at an arbitrary step boundary,
// serializing it, restoring from the bytes and resuming produces EXACTLY the
// straight-through run — same outputs, same memory image, same Stats
// including cycle counts and fault-recovery counters. Checkpointing must
// never be observable in the results.
func TestChaosKillAndResumeDifferential(t *testing.T) {
	kinds := []variant.Kind{variant.SingleInstruction, variant.Balanced, variant.MultiInstruction}
	groups := machine.Default(variant.SingleInstruction).Groups
	plans := []*fault.Plan{
		nil,
		fault.Random(1, groups, groups),
		fault.Random(2, groups, groups),
	}
	var kills, faultedKills int64
	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			for _, kind := range kinds {
				for pi, plan := range plans {
					cfg := machine.Default(kind)
					cfg.FaultPlan = plan

					oracle := buildRun(t, c, cfg)
					if _, err := oracle.Run(); err != nil {
						t.Fatalf("%v plan %d oracle: %v", kind, pi, err)
					}
					want := resultOf(oracle)
					wantStats := oracle.Stats()

					name := file + kind.String() + string(rune('0'+pi))
					for _, kill := range killPoints(name, wantStats.Steps, 3) {
						got, stats := runKilled(t, c, cfg, kill)
						if !reflect.DeepEqual(want.outputs, got.outputs) {
							t.Fatalf("%v plan %d kill=%d: outputs diverged:\noracle  %v\nresumed %v",
								kind, pi, kill, want.outputs, got.outputs)
						}
						if !reflect.DeepEqual(want.memory, got.memory) {
							t.Fatalf("%v plan %d kill=%d: shared memory diverged", kind, pi, kill)
						}
						if !reflect.DeepEqual(*wantStats, *stats) {
							t.Fatalf("%v plan %d kill=%d: stats diverged:\noracle  %+v\nresumed %+v",
								kind, pi, kill, *wantStats, *stats)
						}
						kills++
						if plan != nil && stats.Retransmits+stats.Failovers+stats.Reroutes > 0 {
							faultedKills++
						}
					}
				}
			}
		})
	}
	if kills == 0 {
		t.Fatal("no kill points generated; every corpus run was <= 1 step")
	}
	if faultedKills == 0 {
		t.Fatal("no kill-and-resume run ever crossed a fault; the differential never exercised fault replay")
	}
}

// TestChaosDoubleKillAndResume kills twice — restore from a first snapshot,
// run a bit, snapshot the RESTORED machine, restore again, finish — proving
// checkpoint chains survive repeated crashes without drift.
func TestChaosDoubleKillAndResume(t *testing.T) {
	groups := machine.Default(variant.SingleInstruction).Groups
	cfg := machine.Default(variant.SingleInstruction)
	cfg.FaultPlan = fault.Random(3, groups, groups)

	for _, file := range corpusFiles(t) {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			c := compile(t, file)
			oracle := buildRun(t, c, cfg)
			if _, err := oracle.Run(); err != nil {
				t.Fatal(err)
			}
			want := resultOf(oracle)
			wantStats := oracle.Stats()
			if wantStats.Steps < 3 {
				t.Skipf("run too short (%d steps) for a double kill", wantStats.Steps)
			}

			k1 := wantStats.Steps / 3
			k2 := 2 * wantStats.Steps / 3

			m := buildRun(t, c, cfg)
			if err := m.Boot(); err != nil {
				t.Fatal(err)
			}
			for m.Stats().Steps < k1 && !m.Done() {
				if err := m.Step(); err != nil {
					t.Fatal(err)
				}
			}
			var buf1 bytes.Buffer
			if err := m.Snapshot(&buf1); err != nil {
				t.Fatal(err)
			}
			r1, err := machine.Restore(bytes.NewReader(buf1.Bytes()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for r1.Stats().Steps < k2 && !r1.Done() {
				if err := r1.Step(); err != nil {
					t.Fatal(err)
				}
			}
			var buf2 bytes.Buffer
			if err := r1.Snapshot(&buf2); err != nil {
				t.Fatal(err)
			}
			r2, err := machine.Restore(bytes.NewReader(buf2.Bytes()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r2.Run(); err != nil {
				t.Fatal(err)
			}
			got := resultOf(r2)
			if !reflect.DeepEqual(want.outputs, got.outputs) ||
				!reflect.DeepEqual(want.memory, got.memory) ||
				!reflect.DeepEqual(*wantStats, *r2.Stats()) {
				t.Fatalf("double kill at %d,%d diverged from oracle", k1, k2)
			}
		})
	}
}
