package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg() Config { return Config{Depth: 4, MemLatency: 8} }

func TestSingleInstructionTiming(t *testing.T) {
	res, err := Schedule(cfg(), []Instr{{Flow: 0, Thickness: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueCycles != 10 || res.Drain != 4 || res.Cycles != 14 {
		t.Fatalf("timing: %+v", res)
	}
	if res.Fetches != 1 {
		t.Fatalf("fetches = %d, want 1 (fetch once per TCF)", res.Fetches)
	}
	if len(res.Events) != 10 {
		t.Fatalf("events: %d", len(res.Events))
	}
}

func TestBackToBackTCFsNoBubbles(t *testing.T) {
	// Three TCFs of different thickness: issue cycles = total slices; the
	// fill is paid once.
	res, err := Schedule(cfg(), []Instr{
		{Flow: 0, Thickness: 12},
		{Flow: 1, Thickness: 3},
		{Flow: 2, Thickness: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueCycles != 16 || res.Cycles != 20 {
		t.Fatalf("timing: %+v", res)
	}
	// Every cycle 0..15 has exactly one event.
	seen := map[int]bool{}
	for _, e := range res.Events {
		if seen[e.Cycle] {
			t.Fatalf("double issue at cycle %d", e.Cycle)
		}
		seen[e.Cycle] = true
	}
	for c := 0; c < 16; c++ {
		if !seen[c] {
			t.Fatalf("issue bubble at cycle %d", c)
		}
	}
	if res.Fetches != 3 {
		t.Fatalf("fetches = %d", res.Fetches)
	}
}

func TestMemoryReferenceExtendsDrain(t *testing.T) {
	// A memory instruction issuing its last slice at cycle 3 with latency
	// 8 holds the step until cycle 3+8 = 11: drain = 11-4 = 7 > depth 4.
	res, err := Schedule(cfg(), []Instr{{Flow: 0, Thickness: 4, MemRef: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drain != 7 || res.Cycles != 11 {
		t.Fatalf("mem drain: %+v", res)
	}
	// Long instructions hide the latency completely: drain = depth.
	res, err = Schedule(cfg(), []Instr{
		{Flow: 0, Thickness: 4, MemRef: true},
		{Flow: 1, Thickness: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drain != 4 {
		t.Fatalf("hidden latency: %+v", res)
	}
}

func TestZeroThickness(t *testing.T) {
	res, err := Schedule(cfg(), []Instr{{Flow: 0, Thickness: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueCycles != 0 || res.Cycles != 4 || res.Fetches != 1 {
		t.Fatalf("zero thickness: %+v", res)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Schedule(Config{Depth: -1}, nil); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := Schedule(cfg(), []Instr{{Thickness: -1}}); err == nil {
		t.Fatal("negative thickness accepted")
	}
}

// Property: the slice-level schedule agrees with the closed-form step law
// whenever memory references are issued in the final instruction (the step
// engine's conservative assumption).
func TestScheduleMatchesStepLaw(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		var instrs []Instr
		total := 0
		for i := 0; i < n; i++ {
			th := rng.Intn(10)
			instrs = append(instrs, Instr{Flow: i, Thickness: th})
			total += th
		}
		// Mark the final instruction a memory reference half the time.
		anyMem := rng.Intn(2) == 0
		if anyMem && instrs[n-1].Thickness > 0 {
			instrs[n-1].MemRef = true
		} else {
			anyMem = false
		}
		res, err := Schedule(cfg(), instrs)
		if err != nil {
			return false
		}
		return res.Cycles == StepLaw(cfg(), total, anyMem)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization approaches 1 as thickness grows (the amortization
// argument of Section 3.3).
func TestUtilizationGrowsWithThickness(t *testing.T) {
	prev := 0.0
	for _, th := range []int{1, 4, 16, 64, 256} {
		res, err := Schedule(cfg(), []Instr{{Thickness: th}})
		if err != nil {
			t.Fatal(err)
		}
		u := res.Utilization()
		if u <= prev {
			t.Fatalf("utilization not growing at thickness %d: %f <= %f", th, u, prev)
		}
		prev = u
	}
	if prev < 0.98 {
		t.Fatalf("thickness 256 utilization %f should approach 1", prev)
	}
}
