// Package pipeline models the TCF-aware execution pipeline of Figure 13 at
// slice granularity: instruction fetch (IF) and operand select (OS) happen
// once per TCF instruction, then the instruction is held while the thickness
// generates one data-parallel operation per cycle into the execute stages,
// overlapping with the operations of the next resident TCF.
//
// The model validates the step-engine's cost law: executing a step whose
// resident TCFs contribute N operation slices takes N + fill cycles on a
// depth-D pipeline (fill = D), independent of how the slices are divided
// among TCFs — because only the first instruction pays the fill and
// back-to-back TCFs keep every stage busy. A memory reference extends the
// drain to the reference latency when it exceeds the depth.
package pipeline

import "fmt"

// Config describes the pipeline.
type Config struct {
	// Depth is the number of stages an operation traverses after issue
	// (the fill/drain cost).
	Depth int
	// MemLatency is the shared-memory round-trip in cycles; in-flight
	// references must return before the step can commit.
	MemLatency int
}

// Instr is one TCF instruction to schedule: Thickness operation slices, with
// MemRef marking shared-memory references.
type Instr struct {
	Flow      int
	Thickness int
	MemRef    bool
}

// Event records one pipeline occupancy: flow f issued slice k at the given
// cycle.
type Event struct {
	Cycle int
	Flow  int
	Slice int
}

// Result is the outcome of scheduling one step.
type Result struct {
	// Cycles is the total step duration: issue cycles plus drain.
	Cycles int
	// IssueCycles is the number of cycles the issue stage was busy.
	IssueCycles int
	// Drain is the tail latency after the last issue (pipeline depth or
	// outstanding memory latency, whichever dominates).
	Drain int
	// Fetches counts instruction fetches (one per TCF instruction).
	Fetches int
	// Events is the issue schedule (slice-per-cycle).
	Events []Event
}

// Schedule runs the resident TCF instructions of one step through the
// pipeline back to back and returns the timing.
func Schedule(cfg Config, instrs []Instr) (*Result, error) {
	if cfg.Depth < 0 || cfg.MemLatency < 0 {
		return nil, fmt.Errorf("pipeline: negative latency parameters")
	}
	res := &Result{}
	cycle := 0
	anyMem := false
	lastMemIssue := -1
	for _, in := range instrs {
		if in.Thickness < 0 {
			return nil, fmt.Errorf("pipeline: negative thickness %d", in.Thickness)
		}
		res.Fetches++
		// IF/OS overlap with the previous instruction's operation
		// generation (the TCF storage buffer feeds the pipeline), so no
		// issue bubble between TCFs; a zero-thickness instruction
		// occupies the control stages only.
		for k := 0; k < in.Thickness; k++ {
			res.Events = append(res.Events, Event{Cycle: cycle, Flow: in.Flow, Slice: k})
			if in.MemRef {
				anyMem = true
				lastMemIssue = cycle
			}
			cycle++
		}
	}
	res.IssueCycles = cycle
	res.Drain = cfg.Depth
	if anyMem {
		// The last reference returns MemLatency cycles after its issue;
		// the step cannot commit earlier.
		if tail := lastMemIssue + cfg.MemLatency - cycle; tail > res.Drain {
			res.Drain = tail
		}
	}
	res.Cycles = res.IssueCycles + res.Drain
	return res, nil
}

// StepLaw is the closed-form the step engine uses: ops + max(depth,
// memLatency when any shared reference was issued in the final memory
// cycle). Schedule must agree with it for back-to-back slices.
func StepLaw(cfg Config, totalOps int, anyMem bool) int {
	drain := cfg.Depth
	if anyMem && cfg.MemLatency-1 > drain {
		drain = cfg.MemLatency - 1
	}
	return totalOps + drain
}

// Utilization returns the fraction of issue slots doing operation work
// during the step.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.IssueCycles) / float64(r.Cycles)
}
