package main

import (
	"tcfpram/internal/isa"

	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTCFESource(t *testing.T) {
	path := write(t, "p.te", `
shared int c[4] @ 300;
func main() {
    #4;
    c[tid] = tid * 7;
    print(radd(c[tid]));
}
`)
	var out bytes.Buffer
	if err := run([]string{"-mem", "300:4", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"[42]", "mem[300:304] = [0 7 14 21]", "variant=single-instruction"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunAssemblySource(t *testing.T) {
	path := write(t, "p.tasm", "main:\nLDI S0, 9\nPRINT S0\nHALT\n")
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[9]") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestVariantSelection(t *testing.T) {
	path := write(t, "p.te", "func main() { print(fid); }")
	var out bytes.Buffer
	if err := run([]string{"-variant", "esm", path}, &out); err != nil {
		t.Fatal(err)
	}
	// 16 threads each print their flow id.
	if got := strings.Count(out.String(), "[flow"); got != 16 {
		t.Fatalf("expected 16 outputs on esm, got %d:\n%s", got, out.String())
	}
}

func TestTraceAndDisFlags(t *testing.T) {
	path := write(t, "p.te", "func main() { #4; thick int v = tid; print(radd(v)); }")
	var out bytes.Buffer
	if err := run([]string{"-trace", "-gantt", "-dis", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"SETTHICK", "step", "G0:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestMachineShapeFlags(t *testing.T) {
	path := write(t, "p.te", "func main() { print(nproc); print(ngroups); }")
	var out bytes.Buffer
	if err := run([]string{"-groups", "2", "-procs", "3", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[6]") || !strings.Contains(out.String(), "[2]") {
		t.Fatalf("shape flags ignored:\n%s", out.String())
	}
}

func TestLangOverride(t *testing.T) {
	// A .txt file forced to assembly.
	path := write(t, "p.txt", "main:\nPRINTS \"asm\"\nHALT\n")
	var out bytes.Buffer
	if err := run([]string{"-lang", "asm", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "asm") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	te := write(t, "p.te", "func main() { }")
	cases := [][]string{
		{},                        // no file
		{"-variant", "bogus", te}, // unknown variant
		{"-lang", "bogus", te},    // unknown lang
		{"-mem", "nope", te},      // bad mem spec
		{filepath.Join(t.TempDir(), "missing.te")}, // unreadable
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRuntimeErrorPropagates(t *testing.T) {
	path := write(t, "p.te", "func main() { #4; halt; }")
	// Using SETTHICK on the fixed-thickness variant is a machine error.
	var out bytes.Buffer
	if err := run([]string{"-variant", "simd", path}, &out); err == nil {
		t.Fatal("expected runtime error")
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	path := write(t, "p.te", "func main() { undeclared = 1; }")
	var out bytes.Buffer
	if err := run([]string{path}, &out); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestRunBinaryObject(t *testing.T) {
	// End-to-end toolchain: assemble to .tbin elsewhere, run here.
	asm := "main:\nLDI S0, 3\nSETTHICK S0\nTID V0\nST V0+600, V0\nHALT\n"
	p, err := isaAssemble(asm)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.tbin")
	if err := os.WriteFile(path, p, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-mem", "600:3", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mem[600:603] = [0 1 2]") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// isaAssemble produces a TCFB blob for the binary-object test.
func isaAssemble(src string) ([]byte, error) {
	p, err := isa.Assemble("t", src)
	if err != nil {
		return nil, err
	}
	return isa.Encode(p), nil
}

func TestSVGOutput(t *testing.T) {
	path := write(t, "p.te", "func main() { #6; thick int v = tid; print(radd(v)); }")
	svg := filepath.Join(t.TempDir(), "sched.svg")
	var out bytes.Buffer
	if err := run([]string{"-svg", svg, path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("not an svg: %.80s", data)
	}
}

// TestGovernanceFlags: -max-steps and -timeout stop runaway programs
// through the same SetLimits/RunContext path the tcfserve server governs
// tenants with.
func TestGovernanceFlags(t *testing.T) {
	spin := write(t, "spin.te", `
shared int b[1] @ 900;
func main() {
	int n = 0;
	while (1) {
		n += 1;
		b[0] = n;
	}
}
`)

	var out bytes.Buffer
	err := run([]string{"-max-steps", "100", spin}, &out)
	if err == nil || !strings.Contains(err.Error(), "max steps exceeded") {
		t.Fatalf("-max-steps: err = %v", err)
	}

	out.Reset()
	err = run([]string{"-timeout", "100ms", spin}, &out)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("-timeout: err = %v", err)
	}

	// Bounds that the program fits under leave it untouched.
	ok := write(t, "ok.te", "func main() { print(42); }")
	out.Reset()
	if err := run([]string{"-max-steps", "100000", "-timeout", "30s", ok}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[42]") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestCheckpointAndResume: run with -checkpoint, kill by -max-steps bound
// being irrelevant — instead simulate a crash by running a first process
// with checkpointing on a program long enough to write at least one
// checkpoint, then -resume from the file and require the full output.
func TestCheckpointAndResume(t *testing.T) {
	// ~48 steps on the default config: enough boundaries to checkpoint at.
	prog := write(t, "p.te", `
shared int c[8] @ 300;
func main() {
    #8;
    int i = 0;
    while (i < 6) {
        c[tid] = c[tid] + tid;
        i += 1;
    }
    print(radd(c[tid]));
}
`)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	// Oracle: straight through, no checkpointing.
	var oracle bytes.Buffer
	if err := run([]string{"-mem", "300:8", prog}, &oracle); err != nil {
		t.Fatal(err)
	}

	// Checkpointed run: same results, and the file holds the final state.
	var out bytes.Buffer
	if err := run([]string{"-mem", "300:8", "-checkpoint", ckpt, "-checkpoint-every", "4", prog}, &out); err != nil {
		t.Fatal(err)
	}
	if oracle.String() != out.String() {
		t.Fatalf("checkpointing changed output:\noracle:\n%s\ncheckpointed:\n%s", oracle.String(), out.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resume from the last checkpoint: the tail of the run replays and the
	// complete output (including the part from before the checkpoint, which
	// is carried in the snapshot) matches the oracle.
	out.Reset()
	if err := run([]string{"-mem", "300:8", "-resume", ckpt}, &out); err != nil {
		t.Fatal(err)
	}
	if oracle.String() != out.String() {
		t.Fatalf("resumed output diverged:\noracle:\n%s\nresumed:\n%s", oracle.String(), out.String())
	}
}

// TestSchedFlag: -sched dataflow produces output identical to the lockstep
// default (the scheduler is result-neutral), shows up in the -stages header,
// and rejects unknown names.
func TestSchedFlag(t *testing.T) {
	path := write(t, "p.te", `
shared int c[8] @ 300;
func main() {
    #8;
    c[tid] = tid * 3;
    print(radd(c[tid]));
}
`)
	var lock, df bytes.Buffer
	if err := run([]string{"-mem", "300:8", path}, &lock); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sched", "dataflow", "-mem", "300:8", path}, &df); err != nil {
		t.Fatal(err)
	}
	if lock.String() != df.String() {
		t.Fatalf("-sched dataflow changed results:\nlockstep:\n%s\ndataflow:\n%s", lock.String(), df.String())
	}

	var out bytes.Buffer
	if err := run([]string{"-sched", "dataflow", "-stages", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sched=dataflow") {
		t.Fatalf("-stages header missing sched:\n%s", out.String())
	}

	if err := run([]string{"-sched", "bogus", path}, &out); err == nil {
		t.Fatal("expected error for unknown -sched")
	}
}

// TestResumeFlagErrors: -resume rejects a program argument, a missing file,
// and a mismatched machine shape.
func TestResumeFlagErrors(t *testing.T) {
	prog := write(t, "p.te", "func main() { #4; print(radd(tid)); }")
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	var out bytes.Buffer
	if err := run([]string{"-checkpoint", ckpt, "-checkpoint-every", "1", prog}, &out); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-resume", ckpt, prog}, "no program file"},
		{[]string{"-resume", filepath.Join(t.TempDir(), "missing.ckpt")}, ""},
		{[]string{"-resume", ckpt, "-groups", "2"}, "Groups"},
		{[]string{"-checkpoint", ckpt, "-checkpoint-every", "-3", prog}, "checkpoint-every"},
	}
	for i, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Errorf("case %d (%v): expected error", i, tc.args)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestPredictFlag(t *testing.T) {
	path := write(t, "p.te", `
shared int src[8] @ 100 = {3, 1, 4, 1, 5, 9, 2, 6};
func main() {
    #8;
    thick int v = src[tid];
    print(radd(v));
}
`)
	var out bytes.Buffer
	if err := run([]string{"-predict", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "prediction for") {
		t.Fatalf("missing prediction table:\n%s", s)
	}
	// The cost analyzer mirrors the engine exactly: every field must agree.
	if strings.Contains(s, "BOUND VIOLATED") {
		t.Fatalf("lower bound exceeded measurement:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) == 4 && strings.HasSuffix(f[3], "%") && f[3] != "0%" {
			t.Errorf("nonzero prediction error: %q", line)
		}
	}
}

func TestPredictFlagAssembly(t *testing.T) {
	path := write(t, "p.tasm", "main:\nLDI S0, 9\nPRINT S0\nHALT\n")
	var out bytes.Buffer
	if err := run([]string{"-predict", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "prediction for") {
		t.Fatalf("missing prediction table:\n%s", out.String())
	}
}
