// Command tcfrun compiles and executes a tcf-e (.te) or TCF assembler
// (.tasm) program on a chosen execution variant of the extended PRAM-NUMA
// machine, then reports results and statistics.
//
// Usage:
//
//	tcfrun [flags] program.te
//	tcfrun [flags] program.tasm
//	echo 'func main() { print(42); }' | tcfrun -lang tcfe -
//
// Flags select the variant (-variant tcf|balanced|xmt|esm|pram-numa|simd),
// the step-engine backend (-backend interp|fused; fused runs precompiled
// instruction-run closures, bit-identical to the interpreter), the step
// scheduler (-sched lockstep|dataflow; dataflow lets independent TCF groups
// run ahead of each other, synchronizing only at shared-memory dependency
// edges, bit-identical to lockstep), machine shape (-groups, -procs), and
// diagnostics (-trace, -gantt, -dis).
// -vet statically analyzes a tcf-e program before running it (errors abort
// the run); -predict runs the static cost analyzer and prints the predicted
// bounds next to the measured statistics (with per-field error) after the
// run; -discipline erew|crew enables the runtime memory-discipline
// cross-checker, stopping the run on same-step conflicts the selected PRAM
// model forbids. -max-steps and -timeout bound runaway programs through the
// same governance path (SetLimits + RunContext) the tcfserve execution
// server enforces tenant quotas with.
//
// -checkpoint FILE writes a complete machine snapshot to FILE every
// -checkpoint-every steps (atomic replace; the file always holds the latest
// checkpoint). -resume FILE restores from such a snapshot — the program is
// embedded, so no program argument is given — and continues the run
// bit-identically to the uninterrupted one:
//
//	tcfrun -checkpoint run.ckpt -checkpoint-every 512 program.te
//	tcfrun -resume run.ckpt                 # after a crash
//	tcfrun -resume run.ckpt -checkpoint run.ckpt   # resume and keep checkpointing
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcfpram"
	"tcfpram/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcfrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tcfrun", flag.ContinueOnError)
	variantName := fs.String("variant", "tcf", "execution variant: tcf|balanced|xmt|esm|pram-numa|simd (or full names)")
	backendName := fs.String("backend", "", "step-engine backend: interp|fused (default interp)")
	schedName := fs.String("sched", "", "step scheduler: lockstep|dataflow (default lockstep)")
	groups := fs.Int("groups", 0, "processor groups P (0 = variant default)")
	procs := fs.Int("procs", 0, "TCF processor slots per group Tp (0 = default)")
	bound := fs.Int("bound", 0, "balanced variant operation bound b (0 = default)")
	langSel := fs.String("lang", "", "force source language: tcfe|asm (default: by extension)")
	showTrace := fs.Bool("trace", false, "print the step timeline")
	showStages := fs.Bool("stages", false, "print the per-stage cost attribution (Figure 13 pipeline)")
	showGantt := fs.Bool("gantt", false, "print the occupancy gantt")
	showDis := fs.Bool("dis", false, "print the compiled program listing")
	showMem := fs.String("mem", "", "dump shared memory range, e.g. -mem 300:8")
	svgPath := fs.String("svg", "", "write the schedule as an SVG file (implies tracing)")
	vet := fs.Bool("vet", false, "statically analyze tcf-e source before running (error findings abort)")
	predict := fs.Bool("predict", false, "print predicted vs measured cost after the run")
	discName := fs.String("discipline", "", "memory discipline checked at runtime (and by -vet): erew|crew|crcw|off")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the run, e.g. 5s (0 = none)")
	maxSteps := fs.Int64("max-steps", 0, "abort after this many machine steps (0 = default bound)")
	ckptPath := fs.String("checkpoint", "", "write a machine checkpoint to this file periodically (atomic replace)")
	ckptEvery := fs.Int64("checkpoint-every", 1024, "steps between checkpoints (with -checkpoint)")
	resumePath := fs.String("resume", "", "resume from a checkpoint file instead of loading a program")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "tcfrun:", perr)
		}
	}()
	if *resumePath != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-resume restores the program from the checkpoint; no program file expected")
		}
	} else if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one program file (or '-' for stdin)")
	}

	kind, err := tcfpram.ParseVariant(*variantName)
	if err != nil {
		return err
	}
	cfg := tcfpram.DefaultConfig(kind)
	backend, err := tcfpram.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	cfg.Backend = backend
	sched, err := tcfpram.ParseSched(*schedName)
	if err != nil {
		return err
	}
	cfg.Sched = sched
	if *groups > 0 {
		cfg.Groups = *groups
	}
	if *procs > 0 {
		cfg.ProcsPerGroup = *procs
	}
	if *bound > 0 {
		cfg.BalancedBound = *bound
	}
	cfg.TraceEnabled = *showTrace || *showGantt || *svgPath != ""
	disc, err := tcfpram.ParseDiscipline(*discName)
	if err != nil {
		return err
	}
	cfg.MemDiscipline = disc

	// Checkpoint wiring rides in the Config so it applies uniformly to fresh
	// and restored machines (it is result-neutral: restore ignores it when
	// comparing the snapshot's config).
	if *ckptPath != "" {
		if *ckptEvery <= 0 {
			return fmt.Errorf("-checkpoint-every must be positive, got %d", *ckptEvery)
		}
		cfg.CheckpointEvery = *ckptEvery
		cfg.CheckpointSink = &tcfpram.FileCheckpointSink{Path: *ckptPath}
	}

	var m *tcfpram.Machine
	if *resumePath != "" {
		// Behavior-relevant limits must match the snapshot; route -max-steps
		// through the config so RestoreMachine can verify it.
		if *maxSteps > 0 {
			cfg.MaxSteps = *maxSteps
		}
		// The checkpoint embeds the program; the flags must describe the
		// same machine shape the snapshot was taken with (RestoreMachine
		// verifies and names any mismatch).
		f, err := os.Open(*resumePath)
		if err != nil {
			return err
		}
		m, err = tcfpram.RestoreMachine(f, cfg)
		f.Close()
		if err != nil {
			return fmt.Errorf("resume %s: %w", *resumePath, err)
		}
	} else {
		path := fs.Arg(0)
		var src []byte
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			return err
		}

		lang := ""
		switch {
		case strings.HasSuffix(path, ".tasm"):
			lang = "asm"
		case strings.HasSuffix(path, ".tbin"):
			lang = "bin"
		default:
			lang = "tcfe"
		}
		switch *langSel {
		case "asm", "tcfe", "bin":
			lang = *langSel
		case "":
		default:
			return fmt.Errorf("unknown -lang %q (want tcfe, asm or bin)", *langSel)
		}

		if *vet && lang == "tcfe" {
			// Without an explicit -discipline, vet under CREW (the tcfvet
			// default); an explicit "off" runs the hygiene checks only.
			vetDisc := disc
			if *discName == "" {
				vetDisc = tcfpram.DisciplineCREW
			}
			ds := tcfpram.Vet(path, string(src), tcfpram.VetOptions{
				Discipline: vetDisc,
				Variant:    kind,
			})
			if r := tcfpram.RenderDiagnostics(ds); r != "" {
				fmt.Fprint(out, r)
			}
			if tcfpram.DiagnosticsHaveErrors(ds) {
				return fmt.Errorf("vet: %d finding(s); not running", len(ds))
			}
		}

		if m, err = tcfpram.NewMachine(cfg); err != nil {
			return err
		}
		switch lang {
		case "asm":
			err = m.LoadAssembly(path, string(src))
		case "bin":
			err = m.LoadBinary(src)
		default:
			err = m.LoadSource(path, string(src))
		}
		if err != nil {
			return err
		}
	}
	if *showDis {
		fmt.Fprintln(out, m.Disassembly())
	}
	// -max-steps and -timeout route through SetLimits and RunContext — the
	// same governance path the tcfserve execution server stamps per-tenant
	// quotas and deadlines through. A restored machine got its bound from
	// the config above (SetLimits only applies before Boot).
	if *maxSteps > 0 && *resumePath == "" {
		if err := m.SetLimits(*maxSteps, 0); err != nil {
			return err
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stats, runErr := m.RunContext(ctx)
	for _, o := range m.Outputs() {
		fmt.Fprintln(out, o)
	}
	if *showMem != "" {
		var addr int64
		var n int
		if _, err := fmt.Sscanf(*showMem, "%d:%d", &addr, &n); err != nil {
			return fmt.Errorf("bad -mem %q (want addr:count)", *showMem)
		}
		fmt.Fprintf(out, "mem[%d:%d] = %v\n", addr, addr+int64(n), m.Words(addr, n))
	}
	if *showStages {
		fmt.Fprintf(out, "backend=%s sched=%s\n%s\n", backend, sched, m.StageTable())
	}
	if *showTrace {
		fmt.Fprintln(out, m.Timeline())
	}
	if *showGantt {
		fmt.Fprintln(out, m.Gantt())
	}
	if *svgPath != "" {
		if werr := os.WriteFile(*svgPath, []byte(m.TraceSVG()), 0o644); werr != nil {
			return werr
		}
		fmt.Fprintf(out, "wrote schedule SVG to %s\n", *svgPath)
	}
	if stats != nil {
		fmt.Fprintf(out, "variant=%s %s\n", kind, stats)
	}
	if *predict {
		rep, perr := m.PredictCost()
		if perr != nil {
			return perr
		}
		fmt.Fprint(out, tcfpram.PredictionTable(rep, stats))
	}
	return runErr
}
