// Command netbench exercises the cycle-level interconnect simulator: mesh
// and torus networks under uniform random and hotspot traffic, sweeping
// size, load and link capacity — the bandwidth experiments behind the ESM
// substrate assumption (Figure 1). With -faults it injects deterministic
// fault plans of increasing intensity and reports the throughput/latency
// degradation curve plus the recovery work (retransmissions, re-routes)
// that kept delivery lossless. A closing section reports the step-engine
// throughput of the vector-add workload under -backend interp|fused and
// -sched lockstep|dataflow.
//
// Usage:
//
//	netbench [-sizes 2,4,8] [-pernode 16] [-cap 2] [-seed 1]
//	         [-patterns transpose,tornado] [-faults]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tcfpram/internal/exper"
	"tcfpram/internal/fault"
	"tcfpram/internal/machine"
	"tcfpram/internal/network"
	"tcfpram/internal/profiling"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
}

func run() error {
	sizes := flag.String("sizes", "2,4,6,8", "comma-separated mesh side lengths")
	perNode := flag.Int("pernode", 16, "packets injected per node")
	linkCap := flag.Int("cap", 2, "link capacity (packets per cycle)")
	seed := flag.Int64("seed", 1, "traffic and fault seed")
	patterns := flag.String("patterns", "", "comma-separated traffic patterns (default: all)")
	faults := flag.Bool("faults", false, "sweep fault intensity and report degradation curves")
	backendName := flag.String("backend", "", "step-engine backend for the machine throughput section: interp|fused")
	schedName := flag.String("sched", "", "step scheduler for the machine throughput section: lockstep|dataflow")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil {
			fmt.Fprintln(os.Stderr, "netbench:", perr)
		}
	}()

	pats, err := parsePatterns(*patterns)
	if err != nil {
		return err
	}

	fmt.Printf("uniform random traffic, %d packets/node, link capacity %d\n\n", *perNode, *linkCap)
	fmt.Printf("%-8s %-8s %-12s %-10s %-12s %-12s\n", "nodes", "kind", "avg latency", "avg hops", "max latency", "throughput")
	for _, f := range strings.Split(*sizes, ",") {
		side, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || side <= 0 {
			return fmt.Errorf("bad size %q (want a positive integer)", f)
		}
		for _, kind := range []network.Kind{network.Mesh2D, network.Torus2D} {
			s, err := network.RandomTraffic(network.Config{
				Kind: kind, Width: side, Height: side, LinkCapacity: *linkCap,
			}, *perNode, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("%-8d %-8s %-12.2f %-10.2f %-12d %-12.3f\n",
				side*side, kind, s.AvgLatency, s.AvgHops, s.MaxLatency, s.Throughput)
		}
	}

	// Classic traffic patterns on an 8x8 torus.
	fmt.Printf("\ntraffic patterns, 8x8 torus, %d packets/node, link capacity %d\n\n", *perNode, *linkCap)
	fmt.Printf("%-14s %-12s %-10s %-12s\n", "pattern", "avg latency", "avg hops", "throughput")
	for _, p := range pats {
		s, err := network.PatternTraffic(network.Config{
			Kind: network.Torus2D, Width: 8, Height: 8, LinkCapacity: *linkCap,
		}, p, *perNode)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %-12.2f %-10.2f %-12.3f\n", p, s.AvgLatency, s.AvgHops, s.Throughput)
	}

	// Hotspot: everyone targets node 0.
	fmt.Printf("\nhotspot traffic (all nodes -> node 0), 8x8 mesh\n")
	n, err := network.New(network.Config{Kind: network.Mesh2D, Width: 8, Height: 8, LinkCapacity: *linkCap})
	if err != nil {
		return err
	}
	for src := 1; src < n.Size(); src++ {
		if _, err := n.Inject(src, 0); err != nil {
			return err
		}
	}
	ok, err := n.Drain(1_000_000)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("hotspot drain stuck (%d in flight)", n.InFlight())
	}
	s := n.Stats()
	fmt.Printf("delivered=%d avg latency=%.2f (uncontended distance avg %.2f) max=%d\n",
		s.Delivered, s.AvgLatency, s.AvgHops+2, s.MaxLatency)

	// Step-engine throughput: the interconnect above is the substrate the
	// machine's shared references ride on, so close with the end-to-end step
	// rate of the Section 4 vector-add workload under the selected backend.
	backend, err := machine.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	sched, err := machine.ParseSched(*schedName)
	if err != nil {
		return err
	}
	const vecSize, reps = 1024, 64
	start := time.Now()
	var steps int64
	for i := 0; i < reps; i++ {
		m := exper.MustRun(variant.SingleInstruction,
			workload.VectorAdd(workload.StyleTCF, vecSize, 16, 0),
			func(c *machine.Config) { c.Backend = backend; c.Sched = sched })
		steps += m.Stats().Steps
	}
	el := time.Since(start)
	fmt.Printf("\nstep-engine throughput, vector add (%d lanes) x %d runs, backend=%s sched=%s\n", vecSize, reps, backend, sched)
	fmt.Printf("steps=%d elapsed=%v steps/sec=%.0f\n", steps, el.Round(time.Millisecond), float64(steps)/el.Seconds())

	if *faults {
		return faultSweep(*perNode, *linkCap, *seed)
	}
	return nil
}

// parsePatterns resolves the -patterns list (empty = all patterns).
func parsePatterns(spec string) ([]network.Pattern, error) {
	if strings.TrimSpace(spec) == "" {
		return network.Patterns(), nil
	}
	var out []network.Pattern
	for _, name := range strings.Split(spec, ",") {
		p, err := network.ParsePattern(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// faultSweep measures the degradation curve: the same uniform random load
// under fault plans of increasing drop/corruption intensity plus a fixed set
// of transient link outages. Delivery stays lossless; latency and cycle
// counts degrade and the recovery counters show the work spent.
func faultSweep(perNode, linkCap int, seed int64) error {
	const side = 8
	fmt.Printf("\nfault degradation sweep, %dx%d mesh, %d packets/node, link capacity %d, seed %d\n\n",
		side, side, perNode, linkCap, seed)
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s %-10s %-10s %-10s\n",
		"drop rate", "delivered", "avg latency", "latency x", "cycles x", "retransmit", "reroutes", "corrupted")

	var base network.Stats
	for i, rate := range []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05} {
		var plan *fault.Plan
		if rate > 0 {
			plan = &fault.Plan{
				Seed:        seed,
				DropRate:    rate,
				CorruptRate: rate / 2,
				Links: []fault.LinkFault{
					{Node: 9, Dir: 0, Interval: fault.Interval{From: 8, To: 256}},
					{Node: 27, Dir: 3, Interval: fault.Interval{From: 32, To: 400}},
					{Node: 44, Dir: 1, Interval: fault.Interval{From: 0, To: 128}},
				},
				Routers:      []fault.RouterFault{{Node: 18, Interval: fault.Interval{From: 16, To: 48}}},
				RetryTimeout: 8,
				MaxRetries:   20,
			}
		}
		s, err := network.RandomTraffic(network.Config{
			Kind: network.Mesh2D, Width: side, Height: side, LinkCapacity: linkCap, Faults: plan,
		}, perNode, seed)
		if err != nil {
			return fmt.Errorf("fault sweep at rate %g: %w", rate, err)
		}
		if i == 0 {
			base = s
		}
		latX, cycX := 1.0, 1.0
		if base.AvgLatency > 0 {
			latX = s.AvgLatency / base.AvgLatency
		}
		if base.Cycles > 0 {
			cycX = float64(s.Cycles) / float64(base.Cycles)
		}
		fmt.Printf("%-10.3f %-10d %-12.2f %-12.2f %-10.2f %-10d %-10d %-10d\n",
			rate, s.Delivered, s.AvgLatency, latX, cycX, s.Retransmits, s.Reroutes, s.Corrupted)
	}
	return nil
}
