// Command netbench exercises the cycle-level interconnect simulator: mesh
// and torus networks under uniform random and hotspot traffic, sweeping
// size, load and link capacity — the bandwidth experiments behind the ESM
// substrate assumption (Figure 1).
//
// Usage:
//
//	netbench [-sizes 2,4,8] [-pernode 16] [-cap 2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tcfpram/internal/network"
)

func main() {
	sizes := flag.String("sizes", "2,4,6,8", "comma-separated mesh side lengths")
	perNode := flag.Int("pernode", 16, "packets injected per node")
	linkCap := flag.Int("cap", 2, "link capacity (packets per cycle)")
	seed := flag.Int64("seed", 1, "traffic seed")
	flag.Parse()

	fmt.Printf("uniform random traffic, %d packets/node, link capacity %d\n\n", *perNode, *linkCap)
	fmt.Printf("%-8s %-8s %-12s %-10s %-12s %-12s\n", "nodes", "kind", "avg latency", "avg hops", "max latency", "throughput")
	for _, f := range strings.Split(*sizes, ",") {
		side, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || side <= 0 {
			fmt.Fprintf(os.Stderr, "netbench: bad size %q\n", f)
			os.Exit(1)
		}
		for _, kind := range []network.Kind{network.Mesh2D, network.Torus2D} {
			s, err := network.RandomTraffic(network.Config{
				Kind: kind, Width: side, Height: side, LinkCapacity: *linkCap,
			}, *perNode, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netbench:", err)
				os.Exit(1)
			}
			fmt.Printf("%-8d %-8s %-12.2f %-10.2f %-12d %-12.3f\n",
				side*side, kind, s.AvgLatency, s.AvgHops, s.MaxLatency, s.Throughput)
		}
	}

	// Classic traffic patterns on an 8x8 torus.
	fmt.Printf("\ntraffic patterns, 8x8 torus, %d packets/node, link capacity %d\n\n", *perNode, *linkCap)
	fmt.Printf("%-14s %-12s %-10s %-12s\n", "pattern", "avg latency", "avg hops", "throughput")
	for _, p := range network.Patterns() {
		s, err := network.PatternTraffic(network.Config{
			Kind: network.Torus2D, Width: 8, Height: 8, LinkCapacity: *linkCap,
		}, p, *perNode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netbench:", err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %-12.2f %-10.2f %-12.3f\n", p, s.AvgLatency, s.AvgHops, s.Throughput)
	}

	// Hotspot: everyone targets node 0.
	fmt.Printf("\nhotspot traffic (all nodes -> node 0), 8x8 mesh\n")
	n, err := network.New(network.Config{Kind: network.Mesh2D, Width: 8, Height: 8, LinkCapacity: *linkCap})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netbench:", err)
		os.Exit(1)
	}
	for src := 1; src < n.Size(); src++ {
		n.Inject(src, 0)
	}
	if !n.Drain(1_000_000) {
		fmt.Fprintln(os.Stderr, "netbench: hotspot drain stuck")
		os.Exit(1)
	}
	s := n.Stats()
	fmt.Printf("delivered=%d avg latency=%.2f (uncontended distance avg %.2f) max=%d\n",
		s.Delivered, s.AvgLatency, s.AvgHops+2, s.MaxLatency)
}
