// Command detlint lints the engine's deterministic packages for constructs
// that break bit-identical replay: ranging over maps with iteration
// variables, time.Now/Since/Until, and math/rand imports. See
// internal/lint for the rules and the //detlint:ignore escape hatch.
//
// Usage:
//
//	detlint [package-dir ...]
//
// With no arguments it lints the default deterministic set:
// internal/machine, internal/mem, internal/fuse, internal/multiop.
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tcfpram/internal/lint"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

// deterministicPackages is the engine set whose outputs must replay
// bit-identically; everything the serve layer hashes, journals or diffs
// flows through these four.
var deterministicPackages = []string{
	"internal/machine",
	"internal/mem",
	"internal/fuse",
	"internal/multiop",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: detlint [package-dir ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		dirs = deterministicPackages
	}
	for _, d := range dirs {
		if st, err := os.Stat(d); err != nil || !st.IsDir() {
			fmt.Fprintf(errw, "detlint: %s is not a directory\n", d)
			return exitUsage
		}
	}

	findings, err := lint.Packages(dirs)
	if err != nil {
		fmt.Fprintln(errw, "detlint:", err)
		return exitUsage
	}
	if len(findings) == 0 {
		fmt.Fprintf(out, "detlint: %d package(s) clean\n", len(dirs))
		return exitClean
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	fmt.Fprintf(errw, "detlint: %d finding(s)\n", len(findings))
	return exitFindings
}
