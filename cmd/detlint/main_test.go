package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func detlint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw strings.Builder
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestCleanPackage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte("package a\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := detlint(t, dir)
	if code != exitClean || !strings.Contains(out, "clean") {
		t.Fatalf("code %d out %q, want %d and a clean report", code, out, exitClean)
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	src := "package a\n\nimport \"math/rand\"\n\nfunc f() int { return rand.Int() }\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := detlint(t, dir)
	if code != exitFindings {
		t.Fatalf("code %d, want %d (stderr %q)", code, exitFindings, errw)
	}
	if !strings.Contains(out, "math-rand") || !strings.Contains(errw, "1 finding(s)") {
		t.Fatalf("out %q errw %q", out, errw)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := detlint(t, "-nope"); code != exitUsage {
		t.Fatalf("bad flag: code %d, want %d", code, exitUsage)
	}
	if code, _, _ := detlint(t, "no/such/dir"); code != exitUsage {
		t.Fatalf("missing dir: code %d, want %d", code, exitUsage)
	}
}

// TestDefaultSetClean runs the tool exactly as `make lint` does, from the
// repo root, over the default deterministic packages.
func TestDefaultSetClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	code, _, errw := detlint(t)
	if code != exitClean {
		t.Fatalf("engine packages not clean (code %d):\n%s", code, errw)
	}
}
