package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tcfpram
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7_SingleInstruction 	     400	     22591 ns/op	        12.00 maxstepops	         6.000 steps	   13714 B/op	      87 allocs/op
BenchmarkS4a_VectorAdd/tcf/64   	     400	     31588 ns/op	       373.0 cycles	         8.000 fetches	         8.000 steps	         0.2165 util	   44516 B/op	      74 allocs/op
PASS
ok  	tcfpram	0.642s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || !strings.Contains(r.CPU, "Xeon") {
		t.Fatalf("bad env header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(r.Benchmarks))
	}
	fig7 := r.Benchmarks[0]
	if fig7.Name != "BenchmarkFig7_SingleInstruction" || fig7.Iterations != 400 {
		t.Fatalf("bad fig7: %+v", fig7)
	}
	if fig7.Metrics["ns/op"] != 22591 || fig7.Metrics["allocs/op"] != 87 || fig7.Metrics["maxstepops"] != 12 {
		t.Fatalf("bad fig7 metrics: %v", fig7.Metrics)
	}
	s4a := r.Benchmarks[1]
	if s4a.Name != "BenchmarkS4a_VectorAdd/tcf/64" || s4a.Metrics["util"] != 0.2165 {
		t.Fatalf("bad s4a: %+v", s4a)
	}
}

func TestMergeReplacesSameLabel(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")

	if err := run([]string{"-label", "before", "-o", out}, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	after := strings.ReplaceAll(sample, "22591", "9000")
	if err := run([]string{"-label", "after", "-o", out}, strings.NewReader(after)); err != nil {
		t.Fatal(err)
	}
	// Re-running a label replaces the earlier run instead of appending.
	again := strings.ReplaceAll(sample, "22591", "8000")
	if err := run([]string{"-label", "after", "-o", out}, strings.NewReader(again)); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("got %d runs, want 2: %s", len(doc.Runs), data)
	}
	if doc.Runs[0].Label != "before" || doc.Runs[1].Label != "after" {
		t.Fatalf("bad labels: %s %s", doc.Runs[0].Label, doc.Runs[1].Label)
	}
	if got := doc.Runs[1].Benchmarks[0].Metrics["ns/op"]; got != 8000 {
		t.Fatalf("after run not replaced: ns/op = %v, want 8000", got)
	}
}

func TestEmptyInputFails(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n")); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}

func TestCompare(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-label", "before", "-o", out}, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	faster := strings.ReplaceAll(strings.ReplaceAll(sample, "22591", "9000"), "87 allocs", "53 allocs")
	if err := run([]string{"-label", "after", "-o", out}, strings.NewReader(faster)); err != nil {
		t.Fatal(err)
	}

	// Improvement: compare passes.
	if err := run([]string{"-compare", "-o", out, "before", "after"}, strings.NewReader("")); err != nil {
		t.Fatalf("compare on an improvement failed: %v", err)
	}
	// Regression beyond the threshold: compare fails, naming the benchmark.
	err := run([]string{"-compare", "-o", out, "after", "before"}, strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "regression") || !strings.Contains(err.Error(), "Fig7") {
		t.Fatalf("want ns/op regression failure, got %v", err)
	}
	// An allocs/op increase alone is a regression even within the ns/op
	// threshold.
	allocUp := strings.ReplaceAll(sample, "87 allocs", "88 allocs")
	if err := run([]string{"-label", "allocup", "-o", out}, strings.NewReader(allocUp)); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-compare", "-o", out, "-threshold", "10", "before", "allocup"}, strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("want allocs/op regression failure, got %v", err)
	}
	// Unknown labels fail loudly.
	err = run([]string{"-compare", "-o", out, "before", "nosuch"}, strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "no run labelled") {
		t.Fatalf("want unknown-label failure, got %v", err)
	}
	// Label pairs that share no benchmarks fail rather than pass vacuously.
	other := "BenchmarkOther 	     400	     100 ns/op	       0 B/op	       0 allocs/op\n"
	if err := run([]string{"-label", "other", "-o", out}, strings.NewReader(other)); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-compare", "-o", out, "before", "other"}, strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "share no benchmarks") {
		t.Fatalf("want no-overlap failure, got %v", err)
	}
}

const zeroAllocSample = `goos: linux
goarch: amd64
BenchmarkEngine_StepLoop-8 	  100000	       704.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig7_SingleInstruction 	     400	     22591 ns/op	   13714 B/op	      87 allocs/op
PASS
`

func TestRequireZeroAlloc(t *testing.T) {
	tmp := func() string { return filepath.Join(t.TempDir(), "bench.json") }
	// Matching benchmark at 0 allocs/op: gate passes.
	if err := run([]string{"-o", tmp(), "-require-zero-alloc", "Engine_StepLoop"},
		strings.NewReader(zeroAllocSample)); err != nil {
		t.Fatalf("zero-alloc gate failed on a clean benchmark: %v", err)
	}
	// Matching benchmark that allocates: gate fails.
	err := run([]string{"-o", tmp(), "-require-zero-alloc", "Fig7"}, strings.NewReader(zeroAllocSample))
	if err == nil || !strings.Contains(err.Error(), "allocates") {
		t.Fatalf("want allocation failure, got %v", err)
	}
	// Pattern matching nothing must fail rather than pass vacuously.
	err = run([]string{"-o", tmp(), "-require-zero-alloc", "NoSuchBenchmark"}, strings.NewReader(zeroAllocSample))
	if err == nil || !strings.Contains(err.Error(), "no benchmark matches") {
		t.Fatalf("want unmatched-pattern failure, got %v", err)
	}
	// The merged JSON is still written when the gate fails.
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-o", out, "-require-zero-alloc", "Fig7"},
		strings.NewReader(zeroAllocSample)); err == nil {
		t.Fatal("want gate failure")
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("gate failure must not suppress the JSON merge: %v", err)
	}
}
