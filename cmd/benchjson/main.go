// Command benchjson converts `go test -bench` output into a stable JSON
// document so benchmark runs can be committed, diffed and compared across
// commits. It reads benchmark output from stdin and merges the parsed run
// into the JSON file given by -o: an existing run with the same -label is
// replaced, otherwise the run is appended. This is how BENCH_step_engine.json
// keeps a "before" and an "after" entry for a performance PR.
//
// With -require-zero-alloc the command additionally acts as an allocation
// gate: every benchmark whose name matches the regular expression must
// report 0 allocs/op, and at least one benchmark must match — otherwise
// benchjson exits nonzero (after still writing the merged JSON). CI uses
// this to keep the steady-state step loop allocation-free.
//
// With -compare the command reads nothing from stdin; instead it compares
// two labelled runs already present in the -o file, printing per-benchmark
// ns/op and allocs/op deltas and exiting nonzero when anything regressed
// (ns/op beyond -threshold, or allocs/op at all). CI uses this to compare a
// fresh run against the committed baseline.
//
// Usage:
//
//	go test -bench 'Fig|S4|Engine' -benchmem -run '^$' . | benchjson -label pr3-after -o BENCH_step_engine.json
//	go test -bench Engine_StepLoop -benchmem -run '^$' . | benchjson -require-zero-alloc 'BenchmarkEngine_StepLoop'
//	benchjson -compare -o BENCH_step_engine.json pr4-staged pr8-fused
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line: the benchmark name (with
// any -cpu suffix retained) and every reported metric, keyed by unit
// ("ns/op", "B/op", "allocs/op", plus custom ReportMetric units such as
// "cycles" or "util").
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Run is one labelled benchmark sweep.
type Run struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Document is the top-level JSON file: an ordered list of labelled runs.
type Document struct {
	Runs []Run `json:"runs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	label := fs.String("label", "run", "label for this benchmark run")
	out := fs.String("o", "", "JSON file to merge the run into (default: stdout, no merge)")
	zeroAlloc := fs.String("require-zero-alloc", "", "fail unless every matching benchmark reports 0 allocs/op (regexp; at least one must match)")
	compareMode := fs.Bool("compare", false, "compare two labelled runs from the -o file: benchjson -compare -o FILE labelA labelB")
	threshold := fs.Float64("threshold", 0.10, "ns/op regression tolerance for -compare, as a fraction (0.10 = +10%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compareMode {
		if fs.NArg() != 2 {
			return errors.New("-compare wants exactly two labels: benchjson -compare -o FILE labelA labelB")
		}
		if *out == "" {
			return errors.New("-compare needs -o FILE (the JSON document holding both runs)")
		}
		return compare(os.Stdout, *out, fs.Arg(0), fs.Arg(1), *threshold)
	}

	r, err := parse(in)
	if err != nil {
		return err
	}
	r.Label = *label
	if len(r.Benchmarks) == 0 {
		return errors.New("no benchmark lines found on stdin")
	}
	gateErr := requireZeroAlloc(r, *zeroAlloc)

	var doc Document
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				return fmt.Errorf("%s: %w", *out, err)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Label == r.Label {
			doc.Runs[i] = r
			replaced = true
			break
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, r)
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	return gateErr
}

// requireZeroAlloc enforces the allocation gate: every benchmark matching
// pattern must report exactly 0 allocs/op, and the pattern must match at
// least one benchmark (a silently unmatched gate would pass vacuously when
// a benchmark is renamed).
func requireZeroAlloc(r Run, pattern string) error {
	if pattern == "" {
		return nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -require-zero-alloc pattern: %w", err)
	}
	matched := 0
	for _, b := range r.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched++
		if allocs, ok := b.Metrics["allocs/op"]; !ok {
			return fmt.Errorf("%s reports no allocs/op (run with -benchmem)", b.Name)
		} else if allocs != 0 {
			return fmt.Errorf("%s allocates: %g allocs/op, want 0", b.Name, allocs)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark matches -require-zero-alloc %q", pattern)
	}
	return nil
}

// compare prints per-benchmark ns/op and allocs/op deltas between two
// labelled runs of the JSON document at path, and returns an error (nonzero
// exit) when any benchmark regressed: ns/op beyond the threshold fraction,
// or allocs/op at all. Benchmarks present in only one run are reported but
// are not a regression — a renamed benchmark shows up as two such lines.
func compare(w io.Writer, path, labelA, labelB string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	find := func(label string) (Run, error) {
		for _, r := range doc.Runs {
			if r.Label == label {
				return r, nil
			}
		}
		return Run{}, fmt.Errorf("%s has no run labelled %q", path, label)
	}
	a, err := find(labelA)
	if err != nil {
		return err
	}
	b, err := find(labelB)
	if err != nil {
		return err
	}

	byName := make(map[string]Benchmark, len(a.Benchmarks))
	for _, bm := range a.Benchmarks {
		byName[bm.Name] = bm
	}
	fmt.Fprintf(w, "%-44s %14s %14s %9s %16s\n", "benchmark", labelA, labelB, "delta", "allocs/op")
	var regressions []string
	matched := 0
	for _, bb := range b.Benchmarks {
		ab, ok := byName[bb.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.6g %9s %16s\n", bb.Name, "-", bb.Metrics["ns/op"], "-", "only in "+labelB)
			continue
		}
		delete(byName, bb.Name)
		matched++
		ans, bns := ab.Metrics["ns/op"], bb.Metrics["ns/op"]
		delta := 0.0
		if ans > 0 {
			delta = (bns - ans) / ans
		}
		aAllocs, bAllocs := ab.Metrics["allocs/op"], bb.Metrics["allocs/op"]
		fmt.Fprintf(w, "%-44s %14.6g %14.6g %+8.1f%% %8g → %-6g\n",
			bb.Name, ans, bns, delta*100, aAllocs, bAllocs)
		if delta > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.6g → %.6g ns/op (%+.1f%% > %+.1f%%)", bb.Name, ans, bns, delta*100, threshold*100))
		}
		if bAllocs > aAllocs {
			regressions = append(regressions,
				fmt.Sprintf("%s: %g → %g allocs/op", bb.Name, aAllocs, bAllocs))
		}
	}
	for name, ab := range byName {
		fmt.Fprintf(w, "%-44s %14.6g %14s %9s %16s\n", name, ab.Metrics["ns/op"], "-", "-", "only in "+labelA)
	}
	if matched == 0 {
		return fmt.Errorf("runs %q and %q share no benchmarks", labelA, labelB)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s) %s → %s:\n  %s",
			len(regressions), labelA, labelB, strings.Join(regressions, "\n  "))
	}
	return nil
}

// parse reads `go test -bench` output, collecting the environment header
// (goos/goarch/cpu) and every benchmark result line.
func parse(in io.Reader) (Run, error) {
	var r Run
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			r.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			r.Benchmarks = append(r.Benchmarks, b)
		}
	}
	return r, sc.Err()
}

// parseLine parses one result line: "BenchmarkName-8  400  22591 ns/op
// 12.00 maxstepops  13714 B/op  87 allocs/op". Fields after the iteration
// count come in (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
