// Command tcfvet statically checks tcf-e programs: memory-discipline
// conformance under a selectable PRAM model (EREW/CREW/CRCW) and flow
// hygiene (unreachable code, dead stores, zero thickness, barriers inside
// parallel arms, constant out-of-range indices, overlapping @ placements).
//
// Usage:
//
//	tcfvet [flags] path...
//
// Each path may be a .te file, a .go file (every embedded raw-string
// constant containing a tcf-e main function is vetted, with positions
// mapped back to the .go file), or a directory (walked recursively for
// both). With -expect FILE the rendered findings are compared against a
// checked-in golden file and the exit status reports the comparison, so CI
// fails on *new* findings rather than on known ones.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tcfpram/internal/analysis"
	"tcfpram/internal/diag"
	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcfvet:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tcfvet", flag.ContinueOnError)
	discName := fs.String("discipline", "crew", "memory discipline to check: erew|crew|crcw|off")
	variantName := fs.String("variant", "tcf", "execution variant assumed for variant-sensitive checks")
	expect := fs.String("expect", "", "golden findings file: compare instead of just printing")
	errorsOnly := fs.Bool("errors-only", false, "report only error-severity findings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("expected at least one path (.te file, .go file or directory)")
	}
	disc, err := mem.ParseDiscipline(*discName)
	if err != nil {
		return err
	}
	vk, err := variant.ParseKind(*variantName)
	if err != nil {
		return err
	}

	units, err := collectUnits(fs.Args())
	if err != nil {
		return err
	}
	var all []diag.Diagnostic
	for _, u := range units {
		ds := analysis.AnalyzeSource(u.name, u.src, analysis.Options{
			Discipline: disc,
			Variant:    vk,
		})
		for _, d := range ds {
			if *errorsOnly && d.Severity < diag.Error {
				continue
			}
			d.Pos.Line += u.lineOff
			all = append(all, d)
		}
	}
	diag.Sort(all)
	got := diag.Render(all)

	if *expect != "" {
		want, err := os.ReadFile(*expect)
		if err != nil {
			return err
		}
		if normalize(got) != normalize(string(want)) {
			fmt.Fprintf(out, "findings differ from %s:\n--- want ---\n%s--- got ---\n%s",
				*expect, normalize(string(want)), normalize(got))
			return fmt.Errorf("findings differ from %s", *expect)
		}
		fmt.Fprintf(out, "tcfvet: %d unit(s) match %s (%d finding(s))\n",
			len(units), *expect, len(all))
		return nil
	}
	if got != "" {
		fmt.Fprint(out, got)
	}
	if len(all) > 0 {
		return fmt.Errorf("%d finding(s) in %d unit(s)", len(all), len(units))
	}
	fmt.Fprintf(out, "tcfvet: %d unit(s) clean\n", len(units))
	return nil
}

func normalize(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	var keep []string
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			keep = append(keep, l)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return strings.Join(keep, "\n") + "\n"
}

// unit is one tcf-e compilation unit to vet. lineOff maps positions of
// programs embedded in .go files back to their host file.
type unit struct {
	name    string
	src     string
	lineOff int
}

func collectUnits(paths []string) ([]unit, error) {
	var units []unit
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if st.IsDir() {
			err = filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
				if err != nil || d.IsDir() {
					return err
				}
				switch filepath.Ext(path) {
				case ".te":
					u, err := teUnit(path)
					if err != nil {
						return err
					}
					units = append(units, u)
				case ".go":
					us, err := goUnits(path)
					if err != nil {
						return err
					}
					units = append(units, us...)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		switch filepath.Ext(p) {
		case ".go":
			us, err := goUnits(p)
			if err != nil {
				return nil, err
			}
			units = append(units, us...)
		default:
			u, err := teUnit(p)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].name < units[j].name })
	return units, nil
}

func teUnit(path string) (unit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return unit{}, err
	}
	return unit{name: filepath.ToSlash(path), src: string(src)}, nil
}

// goUnits extracts tcf-e programs embedded in a Go file as raw-string
// literals containing a main function. Diagnostic lines are offset so they
// point into the host .go file.
func goUnits(path string) ([]unit, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	var units []unit
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
			return true
		}
		src := strings.Trim(lit.Value, "`")
		if !strings.Contains(src, "func main(") {
			return true
		}
		// Line 1 of the embedded source sits on the literal's first line.
		units = append(units, unit{
			name:    filepath.ToSlash(path),
			src:     src,
			lineOff: fset.Position(lit.Pos()).Line - 1,
		})
		return true
	})
	return units, nil
}
