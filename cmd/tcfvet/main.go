// Command tcfvet statically checks tcf-e programs: memory-discipline
// conformance under a selectable PRAM model (EREW/CREW/CRCW) and flow
// hygiene (unreachable code, dead stores, zero thickness, barriers inside
// parallel arms, constant out-of-range indices, overlapping @ placements).
//
// Usage:
//
//	tcfvet [flags] path...
//
// Each path may be a .te file, a .go file (every embedded raw-string
// constant containing a tcf-e main function is vetted, with positions
// mapped back to the .go file), or a directory (walked recursively for
// both). With -expect FILE the rendered findings are compared against a
// checked-in golden file and the exit status reports the comparison, so CI
// fails on *new* findings rather than on known ones.
//
// With -cost each unit that compiles is also run through the static cost
// analyzer (predicted steps, cycles, memory footprint and the
// dataflow-schedulability verdict). With -json both findings and cost
// reports are emitted as one machine-readable JSON document.
//
// Exit status is stable for scripting: 0 when clean, 1 when findings were
// reported (or -expect mismatched), 2 on usage errors (bad flags, bad
// paths, unreadable inputs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tcfpram/internal/analysis"
	"tcfpram/internal/diag"
	"tcfpram/internal/mem"
	"tcfpram/internal/variant"
)

// Stable exit codes, part of the command's interface.
const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable shape of one diagnostic. The field
// set is part of the -json interface; extend it, never rename.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Check    string `json:"check"`
	Message  string `json:"message"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Units    int                    `json:"units"`
	Findings []jsonFinding          `json:"findings"`
	Costs    []*analysis.CostReport `json:"costs,omitempty"`
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("tcfvet", flag.ContinueOnError)
	fs.SetOutput(errw)
	discName := fs.String("discipline", "crew", "memory discipline to check: erew|crew|crcw|off")
	variantName := fs.String("variant", "tcf", "execution variant assumed for variant-sensitive checks")
	expect := fs.String("expect", "", "golden findings file: compare instead of just printing")
	errorsOnly := fs.Bool("errors-only", false, "report only error-severity findings")
	cost := fs.Bool("cost", false, "predict execution cost for each unit that compiles")
	jsonOut := fs.Bool("json", false, "emit findings (and -cost reports) as JSON")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	usage := func(err error) int {
		fmt.Fprintln(errw, "tcfvet:", err)
		return exitUsage
	}
	if fs.NArg() == 0 {
		return usage(fmt.Errorf("expected at least one path (.te file, .go file or directory)"))
	}
	disc, err := mem.ParseDiscipline(*discName)
	if err != nil {
		return usage(err)
	}
	vk, err := variant.ParseKind(*variantName)
	if err != nil {
		return usage(err)
	}

	units, err := collectUnits(fs.Args())
	if err != nil {
		return usage(err)
	}
	var all []diag.Diagnostic
	var costs []*analysis.CostReport
	for _, u := range units {
		ds := analysis.AnalyzeSource(u.name, u.src, analysis.Options{
			Discipline: disc,
			Variant:    vk,
		})
		for _, d := range ds {
			if *errorsOnly && d.Severity < diag.Error {
				continue
			}
			d.Pos.Line += u.lineOff
			all = append(all, d)
		}
		if *cost {
			// A unit that fails to compile already produced a parse/sema
			// finding above; cost analysis only applies to the rest.
			rep, err := analysis.CostSource(u.name, u.src, analysis.DefaultCostParams(vk))
			if err == nil {
				costs = append(costs, rep)
			}
		}
	}
	diag.Sort(all)

	if *jsonOut {
		rep := jsonReport{Units: len(units), Findings: []jsonFinding{}, Costs: costs}
		for _, d := range all {
			rep.Findings = append(rep.Findings, jsonFinding{
				File:     d.File,
				Line:     d.Pos.Line,
				Col:      d.Pos.Col,
				Severity: d.Severity.String(),
				Check:    d.Check,
				Message:  d.Msg,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return usage(err)
		}
		if len(all) > 0 {
			return exitFindings
		}
		return exitClean
	}

	got := diag.Render(all)
	if *expect != "" {
		want, err := os.ReadFile(*expect)
		if err != nil {
			return usage(err)
		}
		if normalize(got) != normalize(string(want)) {
			fmt.Fprintf(out, "findings differ from %s:\n--- want ---\n%s--- got ---\n%s",
				*expect, normalize(string(want)), normalize(got))
			fmt.Fprintf(errw, "tcfvet: findings differ from %s\n", *expect)
			return exitFindings
		}
		fmt.Fprintf(out, "tcfvet: %d unit(s) match %s (%d finding(s))\n",
			len(units), *expect, len(all))
		return exitClean
	}
	if got != "" {
		fmt.Fprint(out, got)
	}
	for _, rep := range costs {
		fmt.Fprint(out, rep.Render())
	}
	if len(all) > 0 {
		fmt.Fprintf(errw, "tcfvet: %d finding(s) in %d unit(s)\n", len(all), len(units))
		return exitFindings
	}
	if !*cost {
		fmt.Fprintf(out, "tcfvet: %d unit(s) clean\n", len(units))
	}
	return exitClean
}

func normalize(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	var keep []string
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if l != "" && !strings.HasPrefix(l, "#") {
			keep = append(keep, l)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return strings.Join(keep, "\n") + "\n"
}

// unit is one tcf-e compilation unit to vet. lineOff maps positions of
// programs embedded in .go files back to their host file.
type unit struct {
	name    string
	src     string
	lineOff int
}

func collectUnits(paths []string) ([]unit, error) {
	var units []unit
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if st.IsDir() {
			err = filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
				if err != nil || d.IsDir() {
					return err
				}
				switch filepath.Ext(path) {
				case ".te":
					u, err := teUnit(path)
					if err != nil {
						return err
					}
					units = append(units, u)
				case ".go":
					us, err := goUnits(path)
					if err != nil {
						return err
					}
					units = append(units, us...)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		switch filepath.Ext(p) {
		case ".go":
			us, err := goUnits(p)
			if err != nil {
				return nil, err
			}
			units = append(units, us...)
		default:
			u, err := teUnit(p)
			if err != nil {
				return nil, err
			}
			units = append(units, u)
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].name < units[j].name })
	return units, nil
}

func teUnit(path string) (unit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return unit{}, err
	}
	return unit{name: filepath.ToSlash(path), src: string(src)}, nil
}

// goUnits extracts tcf-e programs embedded in a Go file as raw-string
// literals containing a main function. Diagnostic lines are offset so they
// point into the host .go file.
func goUnits(path string) ([]unit, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	var units []unit
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, "`") {
			return true
		}
		src := strings.Trim(lit.Value, "`")
		if !strings.Contains(src, "func main(") {
			return true
		}
		// Line 1 of the embedded source sits on the literal's first line.
		units = append(units, unit{
			name:    filepath.ToSlash(path),
			src:     src,
			lineOff: fset.Position(lit.Pos()).Line - 1,
		})
		return true
	})
	return units, nil
}
