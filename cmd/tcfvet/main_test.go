package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden JSON files")

// vet runs the command against args and returns (exit code, stdout, stderr).
func vet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"testdata/cost_demo.te"}, exitClean},
		{"clean_json", []string{"-json", "testdata/cost_demo.te"}, exitClean},
		{"findings", []string{"testdata/findings_demo.te"}, exitFindings},
		{"findings_json", []string{"-json", "testdata/findings_demo.te"}, exitFindings},
		{"no_paths", []string{}, exitUsage},
		{"bad_flag", []string{"-definitely-not-a-flag", "x.te"}, exitUsage},
		{"bad_discipline", []string{"-discipline", "zrcw", "testdata/cost_demo.te"}, exitUsage},
		{"bad_variant", []string{"-variant", "nope", "testdata/cost_demo.te"}, exitUsage},
		{"missing_path", []string{"no/such/file.te"}, exitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := vet(t, tc.args...)
			if code != tc.want {
				t.Fatalf("exit code %d, want %d", code, tc.want)
			}
		})
	}
}

func TestCleanOutput(t *testing.T) {
	code, out, _ := vet(t, "testdata/cost_demo.te")
	if code != exitClean || !strings.Contains(out, "1 unit(s) clean") {
		t.Fatalf("code %d out %q", code, out)
	}
}

func TestFindingsGoToStdoutSummaryToStderr(t *testing.T) {
	code, out, errw := vet(t, "testdata/findings_demo.te")
	if code != exitFindings {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(out, "concurrent-write") {
		t.Fatalf("missing finding in stdout: %q", out)
	}
	if !strings.Contains(errw, "finding(s)") {
		t.Fatalf("missing summary in stderr: %q", errw)
	}
}

func TestCostHumanOutput(t *testing.T) {
	code, out, _ := vet(t, "-cost", "testdata/cost_demo.te")
	if code != exitClean {
		t.Fatalf("exit code %d: %s", code, out)
	}
	for _, want := range []string{"steps", "cycles", "resolved", "schedule"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cost render missing %q:\n%s", want, out)
		}
	}
}

// golden compares got against testdata/name, rewriting under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestJSONGolden pins the machine-readable output byte for byte: the
// findings document for a dirty unit and the findings+cost document for a
// clean one. Regenerate with
//
//	go test ./cmd/tcfvet -update
func TestJSONGolden(t *testing.T) {
	code, out, _ := vet(t, "-json", "testdata/findings_demo.te")
	if code != exitFindings {
		t.Fatalf("exit code %d", code)
	}
	golden(t, "findings_demo.json", out)

	code, out, _ = vet(t, "-json", "-cost", "testdata/cost_demo.te")
	if code != exitClean {
		t.Fatalf("exit code %d", code)
	}
	golden(t, "cost_demo.json", out)
}

// TestJSONShape decodes the -json -cost document and checks the fields
// scripting clients depend on.
func TestJSONShape(t *testing.T) {
	_, out, _ := vet(t, "-json", "-cost", "testdata/cost_demo.te")
	var doc struct {
		Units    int `json:"units"`
		Findings []struct {
			Severity string `json:"severity"`
			Check    string `json:"check"`
		} `json:"findings"`
		Costs []struct {
			Program  string `json:"program"`
			Resolved bool   `json:"resolved"`
			Steps    struct {
				Min, Max int64
			} `json:"steps"`
		} `json:"costs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if doc.Units != 1 || len(doc.Findings) != 0 || len(doc.Costs) != 1 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	c := doc.Costs[0]
	if !c.Resolved || c.Steps.Min <= 0 || c.Steps.Min != c.Steps.Max {
		t.Fatalf("cost report not exact: %+v", c)
	}
}
