package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEmitTargets(t *testing.T) {
	cases := map[string]string{
		"fig2":      "step speedup",
		"fig7":      "Single-instruction variant",
		"fig8":      "Balanced variant",
		"fig9":      "Multi-instruction",
		"fig12":     "both branch paths",
		"fig13":     "fetches per TCF",
		"autosplit": "threshold",
		"storage":   "cached-regfile",
		"summary":   "deploop",
		"fig1":      "avg hops",
		"fig3":      "flow spans",
		"fig4":      "thickness timeline",
		"fig6":      "single-processor view",
		"fig10":     "utilization",
		"fig11":     "NUMA bunch",
		"s4":        "S4h allocation",
		"scaling":   "speedup",
	}
	for target, want := range cases {
		target, want := target, want
		t.Run(target, func(t *testing.T) {
			var out bytes.Buffer
			if err := emit(target, &out); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%s output missing %q:\n%s", target, want, out.String())
			}
		})
	}
}

func TestEmitUnknownTarget(t *testing.T) {
	var out bytes.Buffer
	if err := emit("fig99", &out); err == nil {
		t.Fatal("unknown target accepted")
	}
}
