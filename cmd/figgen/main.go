// Command figgen reproduces the paper's figures as ASCII schedules and
// measurement tables.
//
// Usage:
//
//	figgen <target|all>
//
// Targets: fig1..fig13 (the paper's figures), autosplit (Section 3.3 OS
// splitting), storage (Section 3.3 intermediate-result storage), scaling
// (machine-size sweep), summary (cross-variant kernel matrix), s4 (the
// Section 4 programming comparisons).
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"tcfpram/internal/exper"
	"tcfpram/internal/trace"
	"tcfpram/internal/variant"
)

func main() {
	which := "all"
	if len(os.Args) > 1 {
		which = os.Args[1]
	}
	if err := emit(which, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figgen:", err)
		os.Exit(1)
	}
}

func emit(which string, out io.Writer) error {
	header := func(title string) {
		fmt.Fprintln(out)
		fmt.Fprintln(out, strings.Repeat("=", len(title)))
		fmt.Fprintln(out, title)
		fmt.Fprintln(out, strings.Repeat("=", len(title)))
	}
	all := which == "all"
	match := func(name string) bool { return all || which == name }
	any := false

	if match("fig1") {
		any = true
		header("Figure 1 — ESM substrate: distance-aware network under uniform random traffic")
		rows, err := exper.Fig1(8)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatFig1(rows))
	}
	if match("fig2") {
		any = true
		header("Figure 2 — PRAM-NUMA: NUMA bunching on a sequential chain")
		rows, err := exper.Fig2(128)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatFig2(rows))
	}
	if match("fig3") || match("fig4") {
		any = true
		header("Figures 3/4 — TCF block structure and thickness evolution")
		spans, timeline, m, err := exper.Fig34()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "flow spans (block structure):")
		for _, sp := range spans {
			fmt.Fprintf(out, "  flow %d: steps [%d,%d], max thickness %d, %d operation slices\n",
				sp.Flow, sp.FirstStep, sp.LastStep, sp.MaxLanes, sp.TotalSlices)
		}
		fmt.Fprintf(out, "\nflow 0 thickness timeline: %v\n\n", timeline)
		fmt.Fprintln(out, trace.Gantt(m))
	}
	if match("fig6") {
		any = true
		header("Figure 6 — single-processor view: TCF slices executed one by one")
		m, err := exper.Fig6()
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.RenderSchedule(m))
	}
	schedule := func(name, title string, kind variant.Kind) error {
		if !match(name) {
			return nil
		}
		any = true
		header(title)
		res, err := exper.FigSchedule(kind, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "steps=%d cycles=%d max per-step ops=%d\n\n", res.Steps, res.Cycles, res.MaxStepOps)
		fmt.Fprint(out, exper.RenderSchedule(res.Machine))
		return nil
	}
	if err := schedule("fig7", "Figure 7 — Single-instruction variant (thick instructions slow thin ones)", variant.SingleInstruction); err != nil {
		return err
	}
	if err := schedule("fig8", "Figure 8 — Balanced variant (bounded operations per step)", variant.Balanced); err != nil {
		return err
	}
	if err := schedule("fig9", "Figure 9 — Multi-instruction (XMT) variant (no lockstep)", variant.MultiInstruction); err != nil {
		return err
	}
	if match("fig10") || match("fig11") {
		any = true
		header("Figures 10/11 — low-TLP utilization: single-operation ESM vs PRAM-NUMA bunching")
		rows, err := exper.Fig1011(64)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatFig1011(rows))
	}
	if match("fig12") {
		any = true
		header("Figure 12 — Fixed-thickness (vector/SIMD): both branch paths are paid")
		res, err := exper.Fig12(16)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "two-way conditional over 16 elements:\n")
		fmt.Fprintf(out, "  TCF (two parallel flows): %d ops, %d cycles\n", res.TCFOps, res.TCFCycles)
		fmt.Fprintf(out, "  SIMD (predicated both paths): %d ops, %d cycles\n", res.SIMDOps, res.SIMDCycle)
	}
	if match("fig13") {
		any = true
		header("Figure 13 — TCF pipeline: instruction fetches per TCF instruction")
		rows, err := exper.Fig13()
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatFig13(rows))
	}
	if match("autosplit") {
		any = true
		header("Section 3.3 — OS splitting of overly thick flows (256-lane kernel, P=4)")
		rows, err := exper.AutoSplit()
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatAutoSplit(rows))
	}
	if match("storage") {
		any = true
		header("Section 3.3 — intermediate-result storage: memory-to-memory vs cached register file vs local memory")
		rows, err := exper.Storage(4, 50)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatStorage(rows))
	}
	if match("scaling") {
		any = true
		header("Machine-size scaling — 256-lane workload over P groups (single-instruction)")
		rows, err := exper.Scaling(256, 6)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatScaling(rows))
	}
	if match("summary") {
		any = true
		header("Headline matrix — four kernels across the expressible variants (size 16)")
		cells, err := exper.Summary(16)
		if err != nil {
			return err
		}
		fmt.Fprint(out, exper.FormatSummary(cells))
	}
	if match("s4") {
		any = true
		header("Section 4 — programming construct comparisons")
		var rows []exper.S4Row
		if r, err := exper.S4a([]int{64, 256}); err == nil {
			rows = append(rows, r...)
		} else {
			return err
		}
		if r, err := exper.S4b(5); err == nil {
			rows = append(rows, r...)
		} else {
			return err
		}
		if r, err := exper.S4c(128); err == nil {
			rows = append(rows, r...)
		} else {
			return err
		}
		if r, err := exper.S4d(16); err == nil {
			rows = append(rows, r...)
		} else {
			return err
		}
		if r, err := exper.S4e(64); err == nil {
			rows = append(rows, r...)
		} else {
			return err
		}
		if r, err := exper.S4f(16); err == nil {
			rows = append(rows, r...)
		} else {
			return err
		}
		fmt.Fprint(out, exper.FormatS4(rows))
		g, err := exper.S4g(48)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nS4g multitask (%d tasks): TCF switches=%d cost=%d cyc; thread-machine model=%d cyc\n",
			g.Tasks, g.TCFSwitches, g.TCFSwitchCycles, g.ThreadSwitchCycles)
		h, err := exper.S4h(64, 16)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "S4h allocation (T_app=%d): vertical=%d cyc, horizontal=%d cyc, speedup=%.2f\n",
			h.TApp, h.VerticalCycles, h.HorizontalCycles, h.Speedup)
	}
	if !any {
		return fmt.Errorf("unknown figure %q (want fig1..fig13, autosplit, storage, scaling, summary, s4, or all)", which)
	}
	return nil
}
