// Command tcfas is the TCF toolchain front end: it assembles .tasm sources
// or compiles .te (tcf-e) sources into TCFB binary objects (.tbin) that
// tcfrun and the machine loader accept, and disassembles .tbin objects back
// to source.
//
// Usage:
//
//	tcfas -o prog.tbin prog.tasm      # assemble
//	tcfas -o prog.tbin prog.te        # compile tcf-e
//	tcfas -d prog.tbin                # disassemble to stdout
//	tcfas -l prog.tasm                # listing with PCs to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tcfpram/internal/codegen"
	"tcfpram/internal/isa"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcfas:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tcfas", flag.ContinueOnError)
	output := fs.String("o", "", "output .tbin object path")
	disasm := fs.Bool("d", false, "disassemble a .tbin object to stdout")
	listing := fs.Bool("l", false, "print a PC-annotated listing to stdout")
	langSel := fs.String("lang", "", "force source language: tcfe|asm (default: by extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file")
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	var prog *isa.Program
	switch {
	case strings.HasSuffix(path, ".tbin"):
		prog, err = isa.Decode(data)
	case *langSel == "asm" || strings.HasSuffix(path, ".tasm"):
		prog, err = isa.Assemble(path, string(data))
	case *langSel == "tcfe" || strings.HasSuffix(path, ".te"):
		var c *codegen.Compiled
		c, err = codegen.CompileSource(path, string(data))
		if err == nil {
			prog = c.Program
			if len(c.LocalData) > 0 {
				fmt.Fprintf(os.Stderr, "tcfas: warning: %s has local-memory initializers; the .tbin object carries shared data only\n", path)
			}
		}
	default:
		return fmt.Errorf("cannot infer language of %q (use -lang tcfe|asm)", path)
	}
	if err != nil {
		return err
	}

	if *disasm {
		fmt.Fprint(out, prog.Disassemble())
	}
	if *listing {
		fmt.Fprint(out, prog.Listing())
	}
	if *output != "" {
		if err := os.WriteFile(*output, isa.Encode(prog), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: %d instructions, %d data segments\n",
			*output, prog.Len(), len(prog.Data))
	}
	if !*disasm && !*listing && *output == "" {
		return fmt.Errorf("nothing to do: pass -o, -d or -l")
	}
	return nil
}
