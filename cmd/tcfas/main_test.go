package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram/internal/isa"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const asmSrc = `
.data 100: 1 2 3
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    ST V0+200, V0
    HALT
`

func TestAssembleToObject(t *testing.T) {
	src := write(t, "p.tasm", asmSrc)
	obj := filepath.Join(t.TempDir(), "p.tbin")
	var out bytes.Buffer
	if err := run([]string{"-o", obj, src}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Fatalf("output: %s", out.String())
	}
	blob, err := os.ReadFile(obj)
	if err != nil {
		t.Fatal(err)
	}
	p, err := isa.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 || len(p.Data) != 1 {
		t.Fatalf("decoded: %d instrs %d segs", p.Len(), len(p.Data))
	}
}

func TestCompileTCFEToObject(t *testing.T) {
	src := write(t, "p.te", "func main() { print(7); }")
	obj := filepath.Join(t.TempDir(), "p.tbin")
	var out bytes.Buffer
	if err := run([]string{"-o", obj, src}, &out); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(obj)
	if _, err := isa.Decode(blob); err != nil {
		t.Fatal(err)
	}
}

func TestDisassembleObject(t *testing.T) {
	src := write(t, "p.tasm", asmSrc)
	obj := filepath.Join(t.TempDir(), "p.tbin")
	var out bytes.Buffer
	if err := run([]string{"-o", obj, src}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-d", obj}, &out); err != nil {
		t.Fatal(err)
	}
	dis := out.String()
	for _, want := range []string{"SETTHICK", ".data 100: 1 2 3", "main:"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
	// The disassembly must reassemble to the same program.
	if _, err := isa.Assemble("rt", dis); err != nil {
		t.Fatalf("disassembly does not reassemble: %v", err)
	}
}

func TestListing(t *testing.T) {
	src := write(t, "p.tasm", asmSrc)
	var out bytes.Buffer
	if err := run([]string{"-l", src}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "   0    LDI S0, 4") {
		t.Fatalf("listing:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	te := write(t, "p.te", "func main() { }")
	unknownExt := write(t, "p.xyz", "x")
	cases := [][]string{
		{},                 // no input
		{te},               // nothing to do
		{unknownExt, "-o"}, // flag after positional: parse stops; nothing to do
		{"-o", filepath.Join(t.TempDir(), "o.tbin"), unknownExt}, // unknown language
		{"-o", "/nonexistent-dir/x.tbin", te},                    // unwritable output
		{filepath.Join(t.TempDir(), "missing.tasm")},             // unreadable input
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
