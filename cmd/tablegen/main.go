// Command tablegen regenerates the paper's Table 1 — the key properties and
// measured costs of primitive operations for the six variants of the
// extended PRAM-NUMA model — on the reference P=4, Tp=4, R=16, b=4 machine.
//
// Usage:
//
//	tablegen [-u thickness] [-k instructions]
package main

import (
	"flag"
	"fmt"
	"os"

	"tcfpram/internal/exper"
)

func main() {
	u := flag.Int("u", 16, "thickness of the measured TCF instructions")
	k := flag.Int("k", 8, "straight-line thick instructions in the fetch workload")
	flag.Parse()

	rows, err := exper.Table1(*k, *u)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(1)
	}
	fmt.Printf("Table 1 — key properties and measured primitive costs (P=%d, Tp=%d, R=%d, b=%d)\n\n",
		exper.P, exper.Tp, exper.R, exper.B)
	fmt.Print(exper.FormatTable1(rows, *u))
}
