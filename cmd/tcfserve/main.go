// Command tcfserve runs the multi-tenant tcf-e execution server: an
// HTTP/JSON service that compiles, caches and executes tcf-e programs on
// the extended PRAM-NUMA machine for many concurrent clients, with
// per-tenant quotas, bounded-queue admission control, load shedding and
// graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	tcfserve [flags]
//
// Endpoints:
//
//	POST /run      execute a program: {"source": "...", "groups": 4, ...}
//	GET  /metrics  queue depth, per-outcome counts, stage cycle attribution
//	GET  /healthz  200 while serving, 503 while draining
//
// Example:
//
//	tcfserve -addr :8080 &
//	curl -s -X POST localhost:8080/run -H 'X-Tenant: alice' \
//	    -d '{"source": "func main() { print(42); }"}'
//
// Every failure mode maps to a distinct HTTP status: 429 back off, 403
// quota exceeded, 422 rejected by the tcfvet admission gate, 408 deadline,
// 409 program fault, 503 draining.
//
// With -recover-dir the server becomes crash-recoverable: accepted runs are
// journaled (write-ahead) and checkpoint their machines every
// -checkpoint-every steps, so a killed or panicking server restarts, replays
// the journal, resumes lost runs from their last checkpoint and answers the
// original X-Request-Id values idempotently.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tcfpram/internal/machine"
	"tcfpram/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tcfserve:", err)
		os.Exit(1)
	}
}

// run builds and serves until a termination signal arrives, then drains.
// onReady, when non-nil, receives the bound listen address once the server
// accepts connections (the integration-test seam; -addr :0 picks a free
// port).
func run(args []string, logw io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("tcfserve", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", ":8080", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 0, "concurrent run slots (0 = default 4)")
	maxQueue := fs.Int("max-queue", 0, "admitted requests waiting for a slot before shedding (0 = 2x slots)")
	queueWait := fs.Duration("queue-wait", 0, "max time a queued request waits for a slot (0 = default 2s)")
	maxGroups := fs.Int("max-groups", 0, "largest machine Groups a request may ask for (0 = default 16)")
	maxProcs := fs.Int("max-procs", 0, "largest ProcsPerGroup a request may ask for (0 = default 16)")
	poolIdle := fs.Int("pool-idle", 0, "idle machines kept per config shape (0 = slots)")
	cacheEntries := fs.Int("cache-entries", 0, "compiled-program cache entries (0 = default 256)")
	watchdog := fs.Int64("watchdog-steps", 0, "livelock watchdog window in steps (0 = derive per tenant from the step quota)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace for in-flight runs on shutdown before cancellation")
	maxSteps := fs.Int64("max-steps", 0, "default tenant step quota per run (0 = default 1M)")
	maxThickness := fs.Int("max-thickness", 0, "default tenant flow-thickness quota (0 = default 64Ki)")
	maxSharedWords := fs.Int("max-shared-words", 0, "default tenant shared-memory cap in words (0 = default 1Mi)")
	maxWallClock := fs.Duration("max-wall-clock", 0, "default tenant wall-clock deadline per run (0 = default 5s)")
	maxSourceBytes := fs.Int("max-source-bytes", 0, "default tenant program-source cap (0 = default 64KiB)")
	maxInFlight := fs.Int("max-inflight", 0, "default tenant concurrent-run cap (0 = default 4)")
	backend := fs.String("backend", "", "default tenant step-engine backend: interp|fused (empty = interp)")
	sched := fs.String("sched", "", "default tenant step scheduler: lockstep|dataflow (empty = lockstep)")
	recoverDir := fs.String("recover-dir", "", "enable crash recovery: write-ahead run journal and checkpoints live here")
	ckptEvery := fs.Int64("checkpoint-every", 0, "steps between mid-run machine checkpoints (0 = default 256; needs -recover-dir)")
	quiet := fs.Bool("quiet", false, "suppress the operational log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if _, err := machine.ParseBackend(*backend); err != nil {
		return err
	}
	if _, err := machine.ParseSched(*sched); err != nil {
		return err
	}

	logger := log.New(logw, "tcfserve: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	opts := serve.Options{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		MaxGroups:      *maxGroups,
		MaxProcs:       *maxProcs,
		WatchdogSteps:  *watchdog,
		PoolIdlePerKey: *poolIdle,
		CacheEntries:   *cacheEntries,
		DefaultLimits: serve.Limits{
			MaxSteps:       *maxSteps,
			MaxThickness:   *maxThickness,
			MaxSharedWords: *maxSharedWords,
			MaxWallClock:   *maxWallClock,
			MaxSourceBytes: *maxSourceBytes,
			MaxInFlight:    *maxInFlight,
			Backend:        *backend,
			Sched:          *sched,
		},
		RecoverDir:           *recoverDir,
		CheckpointEverySteps: *ckptEvery,
		Logf:                 logf,
	}
	var srv *serve.Server
	if *recoverDir != "" {
		// NewRecovered replays the journal and finishes crashed runs before
		// returning, so by the time we listen every old request id already
		// has its idempotent answer.
		var err error
		if srv, err = serve.NewRecovered(opts); err != nil {
			return err
		}
	} else {
		srv = serve.New(opts)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logf("listening on %s", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		logf("signal %v: draining (grace %s)", sig, *drainTimeout)
	}

	// Stop admitting and finish (or cancel) in-flight runs first, then
	// shut the HTTP layer down — handlers have all returned by then, so
	// Shutdown only has idle connections left to close.
	srv.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logf("drained, exiting")
	return nil
}
