package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// postJSON sends one /run request and returns the status and decoded body.
func postJSON(t *testing.T, client *http.Client, url, tenant string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/run", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	res, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, out
}

// TestServeSIGTERMIntegration is the end-to-end smoke: boot the real server
// on a loopback port, drive corpus programs plus hostile ones (quota
// exceeding, vet-rejected) over HTTP, then SIGTERM the process and assert a
// clean drain with no leaked goroutines.
func TestServeSIGTERMIntegration(t *testing.T) {
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-max-steps", "2000",
			"-max-wall-clock", "5s",
			"-drain-timeout", "2s",
			"-quiet",
		}, io.Discard, func(addr string) { addrCh <- addr })
	}()
	var url string
	select {
	case addr := <-addrCh:
		url = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	client := &http.Client{Transport: &http.Transport{}}

	// A slice of the real corpus, end to end.
	files, err := filepath.Glob(filepath.Join("..", "..", "internal", "codegen", "testdata", "*.te"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, f := range files[:5] {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		status, out := postJSON(t, client, url, "corpus", map[string]any{
			"name": filepath.Base(f), "source": string(src),
		})
		if status != http.StatusOK || out["outcome"] != "ok" {
			t.Fatalf("%s: status %d outcome %v (%v)", f, status, out["outcome"], out["error"])
		}
	}

	// Hostile: a quota burner (the default tenant step quota is 2000 via
	// the flag above) and a vet-rejected discipline violation. The spin
	// loop is statically resolvable, so the cost predictor bounces it at
	// admission with 412; the balanced variant's step shape is not
	// modeled, so the same program there is admitted and dies on the
	// runtime quota as before.
	burner := `shared int b[1] @ 900; func main() { int n = 0; while (1) { n += 1; b[0] = n; } }`
	status, out := postJSON(t, client, url, "hostile", map[string]any{"source": burner})
	if status != http.StatusPreconditionFailed || out["outcome"] != "predicted-over-quota" {
		t.Fatalf("quota burner (predicted): status %d outcome %v", status, out["outcome"])
	}
	status, out = postJSON(t, client, url, "hostile", map[string]any{
		"source": burner, "variant": "balanced",
	})
	if status != http.StatusForbidden || out["outcome"] != "quota-exceeded" {
		t.Fatalf("quota burner (runtime): status %d outcome %v", status, out["outcome"])
	}
	status, out = postJSON(t, client, url, "hostile", map[string]any{
		"source": `shared int a[2] @ 100; func main() { #8; a[tid == 3] = tid; }`,
	})
	if status != http.StatusUnprocessableEntity || out["outcome"] != "vet-rejected" {
		t.Fatalf("vet reject: status %d outcome %v", status, out["outcome"])
	}

	// Metrics reflect the traffic.
	res, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var snap struct {
		Outcomes map[string]int64 `json:"outcomes"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Outcomes["ok"] != 5 || snap.Outcomes["predicted-over-quota"] != 1 ||
		snap.Outcomes["quota-exceeded"] != 1 || snap.Outcomes["vet-rejected"] != 1 {
		t.Fatalf("metrics: %s", raw)
	}

	// Everything is settled; fix the leak baseline (the machine's
	// process-lifetime worker pools are already warm), then pull the plug.
	client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	if _, err := client.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}

	// Zero leaked goroutines: back to (at most) the pre-SIGTERM baseline,
	// which itself included the serving goroutines that must now be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n < baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, n, buf[:m])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr"}, &buf, nil); err == nil {
		t.Fatal("missing flag value accepted")
	}
	if err := run([]string{"stray"}, &buf, nil); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray argument: %v", err)
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, &buf, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// TestMain doubles the test binary as a real tcfserve process for the
// SIGKILL crash-recovery test: SIGKILL cannot be trapped or forwarded, so
// the server under test must live in a child process the test can kill for
// real.
func TestMain(m *testing.M) {
	if os.Getenv("TCFSERVE_CRASH_CHILD") == "1" {
		args := strings.Split(os.Getenv("TCFSERVE_CRASH_ARGS"), "\x1f")
		if err := run(args, os.Stderr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "tcfserve child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startServerProcess re-execs the test binary as a tcfserve child over
// recoverDir and waits for its listen address on stderr.
func startServerProcess(t *testing.T, recoverDir string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-recover-dir", recoverDir,
		"-checkpoint-every", "4096",
		"-max-steps", "16777216",
		"-max-wall-clock", "60s",
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"TCFSERVE_CRASH_CHILD=1",
		"TCFSERVE_CRASH_ARGS="+strings.Join(args, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child server never became ready")
		return nil, ""
	}
}

// crashSrc runs a few seconds: long enough for the parent to observe a
// checkpoint on disk and SIGKILL the server strictly mid-run, short enough
// for recovery to finish it promptly. Every iteration commits a shared
// write, so the watchdog sees progress.
const crashSrc = `
shared int beat[1] @ 900;
func main() {
	int i = 0;
	while (i < 300000) {
		beat[0] = beat[0] + 1;
		i += 1;
	}
	print(beat[0]);
}
`

// TestServeSIGKILLCrashRecovery is the crash-recovery acceptance test: a
// run is mid-flight when the server is SIGKILLed; a second server over the
// same -recover-dir must replay the journal during startup, resume the run
// from its last checkpoint, finish it, and answer the original
// X-Request-Id idempotently.
func TestServeSIGKILLCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("forks server processes; skipped in -short mode")
	}
	dir := t.TempDir()
	child, url := startServerProcess(t, dir)

	// Fire the run that will be interrupted.
	posted := make(chan struct{})
	go func() {
		defer close(posted)
		body, _ := json.Marshal(map[string]any{"name": "doomed", "source": crashSrc})
		req, err := http.NewRequest("POST", url+"/run", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("X-Request-Id", "crash-1")
		req.Header.Set("X-Tenant", "alice")
		if res, err := http.DefaultClient.Do(req); err == nil {
			// The SIGKILL should sever this connection; a response here
			// means the run finished before the kill landed.
			res.Body.Close()
		}
	}()

	// Wait for the run's first durable checkpoint, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snaps, err := filepath.Glob(filepath.Join(dir, "ckpt-*.snap"))
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			child.Process.Kill()
			child.Wait()
			t.Fatal("no checkpoint appeared; cannot kill mid-run")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()
	<-posted

	// Restart over the same directory. NewRecovered finishes the lost run
	// before the listener comes up, so once we have the address the
	// recovery already happened.
	child2, url2 := startServerProcess(t, dir)
	defer func() {
		child2.Process.Signal(syscall.SIGTERM)
		child2.Wait()
	}()

	res, err := http.Get(url2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Recovery struct {
			Restores      int64 `json:"restores"`
			RecoveredRuns int64 `json:"recovered_runs"`
		} `json:"recovery"`
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Recovery.RecoveredRuns != 1 {
		t.Fatalf("recovered_runs = %d, want 1\n%s", snap.Recovery.RecoveredRuns, raw)
	}
	if snap.Recovery.Restores != 1 {
		t.Fatalf("restores = %d, want 1 (recovery re-ran from scratch instead of resuming)\n%s", snap.Recovery.Restores, raw)
	}

	// The original request id answers with the finished run's result.
	body, _ := json.Marshal(map[string]any{"name": "doomed", "source": crashSrc})
	req, err := http.NewRequest("POST", url2+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "crash-1")
	req.Header.Set("X-Tenant", "alice")
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || out["outcome"] != "ok" {
		t.Fatalf("recovered answer: %d %v (%v)", res.StatusCode, out["outcome"], out["error"])
	}
	outputs, _ := out["outputs"].([]any)
	if len(outputs) != 1 {
		t.Fatalf("recovered outputs: %v", out["outputs"])
	}
	values, _ := outputs[0].(map[string]any)["values"].([]any)
	if len(values) != 1 || values[0].(float64) != 300000 {
		t.Fatalf("recovered result %v, want [300000]", values)
	}
	// The settled run's checkpoint was cleaned up.
	if snaps, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.snap")); len(snaps) != 0 {
		t.Fatalf("checkpoints not cleaned up: %v", snaps)
	}
}
