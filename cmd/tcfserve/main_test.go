package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"
)

// postJSON sends one /run request and returns the status and decoded body.
func postJSON(t *testing.T, client *http.Client, url, tenant string, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/run", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	res, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, out
}

// TestServeSIGTERMIntegration is the end-to-end smoke: boot the real server
// on a loopback port, drive corpus programs plus hostile ones (quota
// exceeding, vet-rejected) over HTTP, then SIGTERM the process and assert a
// clean drain with no leaked goroutines.
func TestServeSIGTERMIntegration(t *testing.T) {
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-max-steps", "2000",
			"-max-wall-clock", "5s",
			"-drain-timeout", "2s",
			"-quiet",
		}, io.Discard, func(addr string) { addrCh <- addr })
	}()
	var url string
	select {
	case addr := <-addrCh:
		url = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	client := &http.Client{Transport: &http.Transport{}}

	// A slice of the real corpus, end to end.
	files, err := filepath.Glob(filepath.Join("..", "..", "internal", "codegen", "testdata", "*.te"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, f := range files[:5] {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		status, out := postJSON(t, client, url, "corpus", map[string]any{
			"name": filepath.Base(f), "source": string(src),
		})
		if status != http.StatusOK || out["outcome"] != "ok" {
			t.Fatalf("%s: status %d outcome %v (%v)", f, status, out["outcome"], out["error"])
		}
	}

	// Hostile: a quota burner (the default tenant step quota is 2000 via
	// the flag above) and a vet-rejected discipline violation.
	status, out := postJSON(t, client, url, "hostile", map[string]any{
		"source": `shared int b[1] @ 900; func main() { int n = 0; while (1) { n += 1; b[0] = n; } }`,
	})
	if status != http.StatusForbidden || out["outcome"] != "quota-exceeded" {
		t.Fatalf("quota burner: status %d outcome %v", status, out["outcome"])
	}
	status, out = postJSON(t, client, url, "hostile", map[string]any{
		"source": `shared int a[2] @ 100; func main() { #8; a[tid == 3] = tid; }`,
	})
	if status != http.StatusUnprocessableEntity || out["outcome"] != "vet-rejected" {
		t.Fatalf("vet reject: status %d outcome %v", status, out["outcome"])
	}

	// Metrics reflect the traffic.
	res, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var snap struct {
		Outcomes map[string]int64 `json:"outcomes"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Outcomes["ok"] != 5 || snap.Outcomes["quota-exceeded"] != 1 || snap.Outcomes["vet-rejected"] != 1 {
		t.Fatalf("metrics: %s", raw)
	}

	// Everything is settled; fix the leak baseline (the machine's
	// process-lifetime worker pools are already warm), then pull the plug.
	client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	if _, err := client.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting connections after drain")
	}

	// Zero leaked goroutines: back to (at most) the pre-SIGTERM baseline,
	// which itself included the serving goroutines that must now be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n < baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: baseline %d, now %d\n%s", baseline, n, buf[:m])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServeFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-addr"}, &buf, nil); err == nil {
		t.Fatal("missing flag value accepted")
	}
	if err := run([]string{"stray"}, &buf, nil); err == nil || !strings.Contains(err.Error(), "unexpected arguments") {
		t.Fatalf("stray argument: %v", err)
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, &buf, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
