package tcfpram_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcfpram"
)

// TestVetRuntimeCrossCheck runs every injected-violation program through
// both halves of the discipline checker and requires them to agree: the
// tcfvet static analyzer must report the expected check with address
// provenance, the runtime cross-checker must stop the run with the
// expected conflict kind, and the runtime conflict address must fall
// inside the word range the static finding named.
//
// Each program declares its expectations in a first-line directive:
//
//	// vet: discipline=<erew|crew> static=<check> runtime=<kind>
func TestVetRuntimeCrossCheck(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("internal", "analysis", "testdata", "violations", "*.te"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 12 {
		t.Fatalf("violation corpus has %d programs, want at least 12", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			dir, err := parseVetDirective(string(src))
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			disc, err := tcfpram.ParseDiscipline(dir.discipline)
			if err != nil {
				t.Fatal(err)
			}

			// Static half: the expected check must fire with a bounded
			// address range.
			ds := tcfpram.Vet(path, string(src), tcfpram.VetOptions{Discipline: disc})
			var matches []tcfpram.Diagnostic
			for _, d := range ds {
				if d.Check == dir.static {
					matches = append(matches, d)
				}
			}
			if len(matches) == 0 {
				t.Fatalf("static analyzer did not report %q; findings:\n%s",
					dir.static, tcfpram.RenderDiagnostics(ds))
			}
			for _, d := range matches {
				if d.Addr < 0 || d.AddrEnd <= d.Addr {
					t.Fatalf("static %s finding has no address provenance: %+v", dir.static, d)
				}
			}

			// Runtime half: the run must stop with the expected conflict.
			cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
			cfg.MemDiscipline = disc
			_, _, runErr := tcfpram.RunSource(cfg, path, string(src))
			if !errors.Is(runErr, tcfpram.ErrDisciplineViolation) {
				t.Fatalf("runtime checker did not trip: err=%v", runErr)
			}
			var v *tcfpram.DisciplineViolation
			if !errors.As(runErr, &v) {
				t.Fatalf("no *DisciplineViolation in %v", runErr)
			}
			if v.Kind != dir.runtime {
				t.Fatalf("runtime conflict kind = %q, want %q (%v)", v.Kind, dir.runtime, v)
			}
			if v.First.Flow == v.Second.Flow && v.First.Lane == v.Second.Lane {
				t.Fatalf("violation pairs one thread with itself: %+v", v)
			}

			// Cross-check: the runtime address must be inside some static
			// finding's range.
			inRange := false
			for _, d := range matches {
				if d.Addr <= v.Addr && v.Addr < d.AddrEnd {
					inRange = true
					break
				}
			}
			if !inRange {
				t.Fatalf("runtime conflict at address %d outside every static %s range:\n%s",
					v.Addr, dir.static, tcfpram.RenderDiagnostics(matches))
			}
		})
	}
}

// TestDisciplineOffRunsViolationsClean is the control: with the checker off
// the same programs run to completion (the machine's native semantics allow
// concurrent access).
func TestDisciplineOffRunsViolationsClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("internal", "analysis", "testdata", "violations", "*.te"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
		if _, _, err := tcfpram.RunSource(cfg, path, string(src)); err != nil {
			t.Errorf("%s: clean run with discipline off failed: %v", path, err)
		}
	}
}

type vetDirective struct {
	discipline string
	static     string
	runtime    string
}

func parseVetDirective(src string) (vetDirective, error) {
	line, _, _ := strings.Cut(src, "\n")
	rest, ok := strings.CutPrefix(strings.TrimSpace(line), "// vet:")
	if !ok {
		return vetDirective{}, fmt.Errorf("first line is not a // vet: directive: %q", line)
	}
	var d vetDirective
	for _, field := range strings.Fields(rest) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return vetDirective{}, fmt.Errorf("bad directive field %q", field)
		}
		switch key {
		case "discipline":
			d.discipline = val
		case "static":
			d.static = val
		case "runtime":
			d.runtime = val
		default:
			return vetDirective{}, fmt.Errorf("unknown directive key %q", key)
		}
	}
	if d.discipline == "" || d.static == "" || d.runtime == "" {
		return vetDirective{}, fmt.Errorf("directive missing a key: %+v", d)
	}
	return d, nil
}
