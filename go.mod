module tcfpram

go 1.22
