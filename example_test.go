package tcfpram_test

import (
	"fmt"

	"tcfpram"
)

// The Section 4 opening example: thickness replaces the thread loop.
func Example() {
	m, stats, err := tcfpram.RunSource(
		tcfpram.DefaultConfig(tcfpram.SingleInstruction), "add", `
shared int a[8] @ 100 = {1, 2, 3, 4, 5, 6, 7, 8};
shared int c[8] @ 300;

func main() {
    #8;
    c[tid] = a[tid] * 10;
}
`)
	if err != nil {
		panic(err)
	}
	c, _ := m.Array("c")
	fmt.Println(c)
	fmt.Println("fetches:", stats.InstrFetches) // one per TCF instruction, thickness 8
	// Output:
	// [10 20 30 40 50 60 70 80]
	// fetches: 7
}

// The ordered multiprefix: a deterministic parallel prefix sum in one thick
// instruction.
func Example_multiprefix() {
	m, _, err := tcfpram.RunSource(
		tcfpram.DefaultConfig(tcfpram.SingleInstruction), "prefix", `
shared int src[6] @ 100 = {3, 1, 4, 1, 5, 9};
shared int pre[6] @ 200;
shared int sum;

func main() {
    #6;
    pre[tid] = mpadd(&sum, src[tid]);
}
`)
	if err != nil {
		panic(err)
	}
	pre, _ := m.Array("pre")
	total, _ := m.Global("sum")
	fmt.Println(pre, total)
	// Output:
	// [0 3 4 8 9 14] 23
}

// The same sequential program runs on every variant of the model; only the
// execution statistics change.
func Example_variants() {
	src := `func main() { int x = 6 * 7; print(x); }`
	for _, v := range []tcfpram.Variant{tcfpram.SingleInstruction, tcfpram.SingleOperation} {
		m, _, err := tcfpram.RunSource(tcfpram.DefaultConfig(v), "seq", src)
		if err != nil {
			panic(err)
		}
		fmt.Println(v, m.PrintedValues()[0])
	}
	// Output:
	// single-instruction 42
	// single-operation 42
}
