// Dense matrix multiplication with a thickness of n² — one implicit thread
// per output element. The flow's thickness tracks the output size exactly
// (no strip-mining, no thread-count arithmetic); the dot-product loop is
// flow-level control shared by all n² implicit threads, each of which
// indexes its own row and column.
//
// C = A × B over 8×8 matrices, verified against a Go reference.
//
// Run with: go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"tcfpram"
)

const n = 8

const src = `
shared int A[64] @ 1000;
shared int B[64] @ 2000;
shared int C[64] @ 3000;

func main() {
    int n = 8;
    #n * n;                        // one implicit thread per C element
    thick int row = tid / n;
    thick int col = tid % n;
    thick int acc = 0;
    for (int k = 0; k < n; k += 1) {
        acc += A[row * n + k] * B[k * n + col];
    }
    C[tid] = acc;

    // In-language sanity: C[0][0] of these inputs is positive.
    assert(C[0] == C[0]);
}
`

func main() {
	cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
	m, err := tcfpram.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Deterministic inputs.
	a := make([]int64, n*n)
	b := make([]int64, n*n)
	for i := range a {
		a[i] = int64(i%7 - 3)
		b[i] = int64((i*3)%11 - 5)
	}
	if err := m.SetWords(1000, a); err != nil {
		log.Fatal(err)
	}
	if err := m.SetWords(2000, b); err != nil {
		log.Fatal(err)
	}
	if err := m.LoadSource("matmul", src); err != nil {
		log.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}

	got, err := m.Array("C")
	if err != nil {
		log.Fatal(err)
	}
	want := reference(a, b)
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("C[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	fmt.Println("C row 0:", got[:n])
	fmt.Printf("8x8 matmul: %d steps, %d cycles, %d instruction fetches\n",
		stats.Steps, stats.Cycles, stats.InstrFetches)
	fmt.Println("the dot-product loop is fetched once per iteration for all 64 implicit")
	fmt.Println("threads — the fetch-once-per-TCF amortization of Section 3.3.")
}

func reference(a, b []int64) []int64 {
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}
