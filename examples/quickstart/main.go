// Quickstart: the paper's opening Section 4 example. Instead of a loop over
// a fixed thread set, the thickness statement (#size;) sets the flow's
// thickness to the data size and the elementwise statement compiles to a
// non-looping instruction sequence:
//
//	#size;
//	c[tid] = a[tid] + b[tid];
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tcfpram"
)

const src = `
shared int a[16] @ 100 = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
shared int b[16] @ 200 = {100, 200, 300, 400, 500, 600, 700, 800,
                          900, 1000, 1100, 1200, 1300, 1400, 1500, 1600};
shared int c[16] @ 300;
shared int total;

func main() {
    // Thickness = data size: no looping, no thread arithmetic.
    #16;
    c[tid] = a[tid] + b[tid];

    // Flow-level reduction of a thick value into a common scalar.
    total = radd(c[tid]);
    print(total);
}
`

func main() {
	cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
	m, stats, err := tcfpram.RunSource(cfg, "quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	c, err := m.Array("c")
	if err != nil {
		log.Fatal(err)
	}
	total, err := m.Global("total")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("c = a + b :", c)
	fmt.Println("radd(c)   :", total)
	fmt.Printf("machine   : %d steps, %d cycles, %d instruction fetches (thickness 16, fetch-once-per-TCF)\n",
		stats.Steps, stats.Cycles, stats.InstrFetches)
}
