// Multitasking with TCFs as tasks. The paper argues that time-shared
// multitasking is expensive on thread machines (switching all Tp thread
// contexts) but free in the extended model: a task is simply a TCF held in
// the TCF storage buffer, and rotating the buffer costs nothing.
//
// This example launches 24 independent tasks on a machine with 16 TCF slots
// and shows that the forced task rotation added zero cycles, then contrasts
// it with the thread-machine context-switch cost model.
//
// Run with: go run ./examples/multitask
package main

import (
	"fmt"
	"log"

	"tcfpram"
)

const src = `
shared int results[256] @ 1000;

func main() {
    // 24 tasks of thickness 8: oversubscribes the 16 TCF slots.
    parallel {
        #8: work();  #8: work();  #8: work();  #8: work();
        #8: work();  #8: work();  #8: work();  #8: work();
        #8: work();  #8: work();  #8: work();  #8: work();
        #8: work();  #8: work();  #8: work();  #8: work();
        #8: work();  #8: work();  #8: work();  #8: work();
        #8: work();  #8: work();  #8: work();  #8: work();
    }
    prints("all tasks joined");
}

func work() {
    // Each task stamps its slice of the result array (fid is the task's
    // flow id; children are numbered 1..24).
    thick int slot = (fid - 1) * 8 + tid;
    results[slot] = fid * 1000 + tid;
}
`

func main() {
	cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
	m, stats, err := tcfpram.RunSource(cfg, "multitask", src)
	if err != nil {
		log.Fatal(err)
	}
	results, err := m.Array("results")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first task slice :", results[0:8])
	fmt.Println("last task slice  :", results[184:192])
	fmt.Printf("tasks rotated through the TCF buffer: %d switches, %d cycles of switch overhead\n",
		stats.TaskSwitches, stats.TaskSwitchCycles)
	fmt.Printf("thread-machine equivalent (Tp=%d contexts per switch): %d cycles\n",
		cfg.ProcsPerGroup, stats.TaskSwitches*int64(cfg.ProcsPerGroup))
	fmt.Printf("total: %d steps, %d cycles, %d flows\n", stats.Steps, stats.Cycles, stats.FlowsCreated)
}
