// Odd-even transposition sort — a fine-grained lockstep-parallel sort that
// exercises exactly what the extended PRAM-NUMA model provides: synchronous
// thick instructions whose thickness tracks the data size, with the PRAM
// step semantics ordering the compare-exchange rounds without any explicit
// synchronization.
//
// Each round r uses a flow of thickness n/2 where implicit thread t handles
// the pair (2t + r%2, 2t + r%2 + 1). After n rounds the array is sorted.
//
// Run with: go run ./examples/mergesort
package main

import (
	"fmt"
	"log"
	"sort"

	"tcfpram"
)

const src = `
shared int data[16] @ 100 = {12, 3, 15, 7, 1, 14, 9, 2, 16, 5, 11, 8, 4, 13, 6, 10};
shared int n @ 50 = 16;

func main() {
    int rounds = n;
    int half = n / 2;
    for (int r = 0; r < rounds; r += 1) {
        int offset = r % 2;
        #half;
        thick int i = tid * 2 + offset;
        thick int valid = i + 1 < n;
        // Clamp the pair index so invalid lanes compare a harmless pair.
        thick int j = (i + 1) * valid;
        thick int x = data[i * valid];
        thick int y = data[j];
        thick int swap = (x > y) & valid;
        thick int lo = x + (y - x) * swap;
        thick int hi = y - (y - x) * swap;
        data[i * valid] = lo * valid + x * (1 - valid);
        data[j] = hi * valid + y * (1 - valid);
    }
}
`

func main() {
	cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
	m, stats, err := tcfpram.RunSource(cfg, "oddeven", src)
	if err != nil {
		log.Fatal(err)
	}
	data, err := m.Array("data")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sorted:", data)
	if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
		log.Fatal("not sorted!")
	}
	fmt.Printf("16 elements sorted in %d synchronous steps (%d cycles); no explicit synchronization —\n",
		stats.Steps, stats.Cycles)
	fmt.Println("the lockstep PRAM write semantics order every compare-exchange round.")
}
