// One program, six execution models. The same sequential tcf-e program runs
// unchanged on every variant of the extended PRAM-NUMA model (Section 3.2);
// the differences show up in the statistics: steps, cycles, instruction
// fetches and utilization. A second, thickness-using program runs on the
// variants that support variable thickness.
//
// Run with: go run ./examples/variants
package main

import (
	"fmt"
	"log"

	"tcfpram"
)

const portableSrc = `
func main() {
    int acc = 0;
    for (int i = 1; i <= 32; i += 1) {
        acc += i * i;
    }
    print(acc);
}
`

const thickSrc = `
shared int c[32] @ 500;

func main() {
    #32;
    c[tid] = tid * 3;
    parallel {
        #16: c[tid] += 1;
        #16: c[tid + 16] += 2;
    }
}
`

// shapeString summarizes the step shape a variant's execution policy selects
// for its default configuration.
func shapeString(v tcfpram.Variant) string {
	cfg := tcfpram.DefaultConfig(v)
	pol, err := tcfpram.PolicyFor(v)
	if err != nil {
		log.Fatalf("%v: %v", v, err)
	}
	s := pol.Shape(tcfpram.MachineShape{
		Groups: cfg.Groups, ProcsPerGroup: cfg.ProcsPerGroup,
		BalancedBound: cfg.BalancedBound, MultiInstrWindow: cfg.MultiInstrWindow,
		VectorWidth: cfg.ProcsPerGroup,
	})
	sync := "lockstep"
	if !s.Lockstep {
		sync = "async"
	}
	out := fmt.Sprintf("%s w=%d", sync, s.Window)
	if s.Budget > 0 {
		out += fmt.Sprintf(" b=%d", s.Budget)
	}
	if s.PerThreadFetch {
		out += " fetch/thread"
	}
	return out
}

func main() {
	fmt.Println("sequential program on all six variants:")
	fmt.Printf("%-30s %-22s %-8s %-8s %-9s %-6s\n", "variant", "policy shape", "steps", "cycles", "fetches", "util")
	for _, v := range tcfpram.Variants() {
		m, stats, err := tcfpram.RunSource(tcfpram.DefaultConfig(v), "seq", portableSrc)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		if got := m.PrintedValues(); len(got) == 0 || got[0] != 11440 {
			log.Fatalf("%v computed %v, want 11440", v, got)
		}
		fmt.Printf("%-30s %-22s %-8d %-8d %-9d %-6.3f\n", v, shapeString(v), stats.Steps, stats.Cycles,
			stats.InstrFetches, stats.Utilization())
	}

	fmt.Println("\nthickness + parallel program on the TCF-capable variants:")
	fmt.Printf("%-30s %-8s %-8s %-9s %-6s\n", "variant", "steps", "cycles", "fetches", "util")
	for _, v := range []tcfpram.Variant{tcfpram.SingleInstruction, tcfpram.Balanced, tcfpram.MultiInstruction} {
		m, stats, err := tcfpram.RunSource(tcfpram.DefaultConfig(v), "thick", thickSrc)
		if err != nil {
			log.Fatalf("%v: %v", v, err)
		}
		c, _ := m.Array("c")
		if c[0] != 1 || c[31] != 95 {
			log.Fatalf("%v: wrong result %v", v, c)
		}
		fmt.Printf("%-30s %-8d %-8d %-9d %-6.3f\n", v, stats.Steps, stats.Cycles,
			stats.InstrFetches, stats.Utilization())
	}
	fmt.Println("\nper-stage attribution (Figure 13 pipeline) of the thick program on the")
	fmt.Println("single-instruction variant:")
	m, _, err := tcfpram.RunSource(tcfpram.DefaultConfig(tcfpram.SingleInstruction), "thick", thickSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.StageTable())

	fmt.Println("note the shapes: balanced trades steps for bounded step width; the XMT engine")
	fmt.Println("packs instructions per step but fetches once per implicit thread; the thread")
	fmt.Println("variants run the sequential program on all 16 thread slots redundantly.")
}
