// Prefix sums and histogramming with the ordered multiprefix — the paper's
// prefix(source, MPADD, &sum, source) primitive. A single thick mpadd
// replaces the per-thread loop the fixed-thread PRAM-NUMA model needs, and
// the constant-latency combining memory orders contributions by implicit
// thread index, so the result is the deterministic exclusive prefix.
//
// Run with: go run ./examples/prefixsum
package main

import (
	"fmt"
	"log"

	"tcfpram"
)

const prefixSrc = `
shared int src[12] @ 100 = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
shared int pre[12] @ 200;
shared int sum;

func main() {
    #12;
    pre[tid] = mpadd(&sum, src[tid]);
}
`

// Histogram: every implicit thread classifies its element and combines into
// the right bucket with per-lane addresses.
const histSrc = `
shared int data[16] @ 100 = {0, 1, 2, 3, 0, 1, 2, 3, 0, 0, 1, 1, 2, 3, 3, 3};
shared int hist[4] @ 300;

func main() {
    #16;
    madd(&hist[data[tid]], 1);
}
`

// Compaction: keep only the elements greater than 4, packed densely, using
// the multiprefix to compute each survivor's output slot.
const compactSrc = `
shared int data[12] @ 100 = {3, 7, 4, 9, 5, 1, 8, 2, 6, 0, 11, 4};
shared int out[12] @ 200;
shared int count;

func main() {
    #12;
    thick int keep = data[tid] > 4;
    thick int slot = mpadd(&count, keep);
    // Every thread computes a slot; only survivors store. A thread-wise
    // store needs a thick index, so losers park their writes in a spare
    // word past the packed region.
    thick int target = slot * keep + 11 * (1 - keep);
    out[target] = data[tid] * keep + out[target] * (1 - keep);
}
`

func main() {
	cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)

	m, _, err := tcfpram.RunSource(cfg, "prefix", prefixSrc)
	if err != nil {
		log.Fatal(err)
	}
	pre, _ := m.Array("pre")
	sum, _ := m.Global("sum")
	fmt.Println("exclusive prefix:", pre)
	fmt.Println("total           :", sum)

	m, _, err = tcfpram.RunSource(tcfpram.DefaultConfig(tcfpram.SingleInstruction), "hist", histSrc)
	if err != nil {
		log.Fatal(err)
	}
	hist, _ := m.Array("hist")
	fmt.Println("histogram       :", hist)

	m, _, err = tcfpram.RunSource(tcfpram.DefaultConfig(tcfpram.SingleInstruction), "compact", compactSrc)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := m.Array("out")
	count, _ := m.Global("count")
	fmt.Printf("compaction      : %v (%d survivors > 4)\n", out[:count], count)
}
