// Parallel breadth-first search — the kind of irregular, fine-grained
// parallel algorithm the paper's introduction motivates. Each BFS level is
// one thick phase: the flow sets its thickness to the vertex count, every
// implicit thread owning a frontier vertex relaxes all its edges in lockstep,
// and the PRAM write semantics resolve concurrent discoveries of the same
// vertex deterministically. No locks, no atomics, no per-thread queues.
//
// The graph is stored CSR-style in shared memory (offsets + edges).
//
// Run with: go run ./examples/bfs
package main

import (
	"fmt"
	"log"

	"tcfpram"
)

// Graph: 12 vertices. Adjacency (undirected):
//
//	0-1 0-2 1-3 2-3 3-4 4-5 4-6 5-7 6-7 7-8 8-9 9-10 2-10 10-11
const src = `
// CSR offsets (13 entries) and edge targets.
shared int off[13]  @ 100 = {0, 2, 4, 7, 10, 13, 15, 17, 20, 22, 24, 27, 28};
shared int edge[28] @ 200 = {1, 2,  0, 3,  0, 3, 10,  1, 2, 4,  3, 5, 6,  4, 7,
                             4, 7,  5, 6, 8,  7, 9,  8, 10,  9, 2, 11,  10};
shared int dist[12] @ 300;
shared int frontier[12] @ 400;   // 1 = vertex is in the current frontier
shared int next[12] @ 500;       // next frontier being built
shared int changed @ 600;        // vertices discovered this level

func main() {
    int n = 12;
    // dist = -1 everywhere, source vertex 0 at distance 0.
    #n;
    dist[tid] = 0 - 1;
    frontier[tid] = 0;
    #1;
    dist[0] = 0;
    frontier[0] = 1;

    int level = 0;
    while (1) {
        changed = 0;
        #n;
        next[tid] = 0;
        // Every vertex in the frontier relaxes its edges. The whole flow
        // loops over the maximum degree; threads outside the frontier or
        // beyond their own degree contribute masked no-ops.
        thick int inF = frontier[tid];
        thick int lo = off[tid];
        thick int hi = off[tid + 1];
        for (int e = 0; e < 3; e += 1) {
            thick int idx = lo + e;
            thick int valid = inF & (idx < hi);
            thick int v = edge[idx * valid];
            thick int undiscovered = dist[v] == (0 - 1);
            thick int hit = valid & undiscovered;
            // Concurrent writes to the same vertex resolve by the CRCW
            // policy; every writer writes the same values.
            dist[v * hit] = (level + 1) * hit + dist[v * hit] * (1 - hit);
            next[v * hit] = 1 * hit + next[v * hit] * (1 - hit);
            madd(&changed, hit);
        }
        // Vertex 0 is the masking dump target; repair it afterwards.
        #1;
        dist[0] = 0;
        next[0] = 0;
        if (changed == 0) {
            break;
        }
        #n;
        frontier[tid] = next[tid];
        #1;
        level += 1;
    }
    print(level);
}
`

func main() {
	cfg := tcfpram.DefaultConfig(tcfpram.SingleInstruction)
	m, stats, err := tcfpram.RunSource(cfg, "bfs", src)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := m.Array("dist")
	if err != nil {
		log.Fatal(err)
	}
	want := referenceBFS()
	fmt.Println("vertex distances:", dist)
	for i := range want {
		if dist[i] != want[i] {
			log.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
	levels := m.PrintedValues()
	fmt.Printf("BFS levels: %d; machine: %d steps, %d cycles\n", levels[0], stats.Steps, stats.Cycles)
	fmt.Println("each level is a handful of thick instructions; concurrent discoveries resolve")
	fmt.Println("through the deterministic CRCW write policy — no locks or atomics anywhere.")
}

// referenceBFS computes the expected distances with a sequential BFS over
// the same CSR graph.
func referenceBFS() []int64 {
	off := []int{0, 2, 4, 7, 10, 13, 15, 17, 20, 22, 24, 27, 28}
	edge := []int{1, 2, 0, 3, 0, 3, 10, 1, 2, 4, 3, 5, 6, 4, 7,
		4, 7, 5, 6, 8, 7, 9, 8, 10, 9, 2, 11, 10}
	dist := make([]int64, 12)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range edge[off[u]:off[u+1]] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
