# Convenience targets for the tcfpram reproduction.

GO ?= go

.PHONY: all build test race bench bench-compare benchall table figures net examples fuzz lint detlint vet serve serve-test dataflow-test clean

# Pinned linter versions, fetched on demand with `go run` so the repo adds
# no module dependencies. Bump deliberately; CI uses the same pins.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.4

# Step-engine benchmark sweep recorded in BENCH_step_engine.json.
# BENCH_BACKEND selects the step-engine backend (interp|fused) and
# BENCH_SCHED the step scheduler (lockstep|dataflow) for the whole sweep via
# the TCFPRAM_BACKEND/TCFPRAM_SCHED env vars, keeping benchmark names
# identical across recorded labels so `benchjson -compare` lines them up.
BENCH_PATTERN ?= BenchmarkFig7|BenchmarkS4a_VectorAdd|BenchmarkEngine_Step
BENCH_LABEL   ?= local
BENCH_TIME    ?= 400x
BENCH_BACKEND ?= interp
BENCH_SCHED   ?= lockstep

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

# bench runs the step-engine benchmarks (allocations reported) and merges
# the labelled result into BENCH_step_engine.json for before/after diffing.
# The steady-state step loop is gated at 0 allocs/op.
bench:
	TCFPRAM_BACKEND=$(BENCH_BACKEND) TCFPRAM_SCHED=$(BENCH_SCHED) $(GO) test -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_TIME) -run '^$$' . \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -o BENCH_step_engine.json \
			-require-zero-alloc 'BenchmarkEngine_StepLoop/(interp|fused)'

# bench-compare diffs two recorded labels (ns/op and allocs/op), failing on
# regressions: make bench-compare BENCH_BASE=pr4-staged BENCH_HEAD=pr8-fused
BENCH_BASE ?= pr4-staged
BENCH_HEAD ?= pr8-fused
bench-compare:
	$(GO) run ./cmd/benchjson -compare -o BENCH_step_engine.json $(BENCH_BASE) $(BENCH_HEAD)

benchall:
	$(GO) test -bench=. -benchmem ./...

table:
	$(GO) run ./cmd/tablegen

figures:
	$(GO) run ./cmd/figgen all

net:
	$(GO) run ./cmd/netbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/prefixsum
	$(GO) run ./examples/mergesort
	$(GO) run ./examples/multitask
	$(GO) run ./examples/variants
	$(GO) run ./examples/bfs
	$(GO) run ./examples/matmul

fuzz:
	$(GO) test -fuzz=FuzzAssemble -fuzztime=30s ./internal/isa/
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/isa/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang/
	$(GO) test -fuzz=FuzzAnalyze -fuzztime=30s ./internal/analysis/
	$(GO) test -fuzz=FuzzCostAnalyze -fuzztime=30s ./internal/analysis/

# lint runs the pinned static checkers on top of go vet (requires network
# access the first time, to fetch the pinned tools), then the in-tree
# determinism linter over the engine packages.
lint:
	$(GO) vet ./...
	$(GO) run $(STATICCHECK) ./...
	$(GO) run $(GOVULNCHECK) ./...
	$(GO) run ./cmd/detlint

# detlint runs only the in-tree determinism linter (no network needed): it
# flags map ranges, wall-clock reads and math/rand in the deterministic
# engine packages.
detlint:
	$(GO) run ./cmd/detlint

# vet runs tcfvet over every checked-in tcf-e program (codegen corpus and
# example sources) and compares against the expected-findings file, so new
# analyzer findings on the corpus are caught as regressions.
vet:
	$(GO) run ./cmd/tcfvet -discipline crew \
		-expect internal/analysis/testdata/expected_findings.txt \
		internal/codegen/testdata examples

# serve runs the multi-tenant execution server; serve-test is the CI smoke
# (race-enabled unit + integration tests incl. SIGTERM drain and
# goroutine-leak checks).
serve:
	$(GO) run ./cmd/tcfserve

serve-test:
	$(GO) test -race -count=1 ./internal/serve ./cmd/tcfserve ./cmd/tcfrun

# dataflow-test runs the dataflow-vs-lockstep differential suite race-enabled
# (corpus, chaos, stacked concurrency, checkpoint cross-restore, fuzz seeds)
# — the same gate CI's dataflow-differential job enforces.
dataflow-test:
	$(GO) test -race -count=1 -run 'Dataflow|Sched' ./internal/chaos ./internal/machine ./internal/serve ./cmd/tcfrun

clean:
	rm -f test_output.txt bench_output.txt
