# Convenience targets for the tcfpram reproduction.

GO ?= go

.PHONY: all build test race bench table figures net examples fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./...

bench:
	$(GO) test -bench=. -benchmem ./...

table:
	$(GO) run ./cmd/tablegen

figures:
	$(GO) run ./cmd/figgen all

net:
	$(GO) run ./cmd/netbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/prefixsum
	$(GO) run ./examples/mergesort
	$(GO) run ./examples/multitask
	$(GO) run ./examples/variants
	$(GO) run ./examples/bfs
	$(GO) run ./examples/matmul

fuzz:
	$(GO) test -fuzz=FuzzAssemble -fuzztime=30s ./internal/isa/
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/isa/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/lang/

clean:
	rm -f test_output.txt bench_output.txt
