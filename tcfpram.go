// Package tcfpram is a software realization of the extended PRAM-NUMA model
// of computation for Thick Control Flow (TCF) programming (Forsell &
// Leppänen, 2012).
//
// The package bundles a complete stack:
//
//   - a TCF machine (P processor groups × Tp TCF processor slots, shared
//     memory with PRAM step semantics, per-group local memories, a
//     distance-aware latency model, multioperations and ordered
//     multiprefixes);
//   - the six execution variants of the model (single-instruction,
//     balanced, multi-instruction/XMT, single-operation/ESM, configurable
//     single-operation/PRAM-NUMA, fixed-thickness/SIMD);
//   - a TCF assembler and the tcf-e language (thickness statements #N;,
//     NUMA statements #1/T;, thick variables, parallel statements,
//     flow-level functions, multiprefix intrinsics);
//   - execution tracing that reproduces the paper's schedule figures.
//
// Quick start:
//
//	m, _ := tcfpram.NewMachine(tcfpram.DefaultConfig(tcfpram.SingleInstruction))
//	_ = m.LoadSource("add", `
//	    shared int a[8] @ 100 = {1,2,3,4,5,6,7,8};
//	    shared int c[8] @ 300;
//	    func main() { #8; c[tid] = a[tid] * 10; }
//	`)
//	stats, _ := m.Run()
//	fmt.Println(m.Words(300, 8), stats.Cycles)
package tcfpram

import (
	"context"
	"fmt"
	"io"
	"strings"

	"tcfpram/internal/analysis"
	"tcfpram/internal/checkpoint"
	"tcfpram/internal/codegen"
	"tcfpram/internal/diag"
	"tcfpram/internal/fault"
	"tcfpram/internal/isa"
	"tcfpram/internal/machine"
	"tcfpram/internal/mem"
	"tcfpram/internal/trace"
	"tcfpram/internal/variant"
)

// Variant selects one of the six execution models of Section 3.2.
type Variant = variant.Kind

// The execution variants (Table 1 column order).
const (
	// SingleInstruction is the full TCF-aware extended PRAM-NUMA model.
	SingleInstruction = variant.SingleInstruction
	// Balanced bounds the operations per step, splitting thick
	// instructions across steps.
	Balanced = variant.Balanced
	// MultiInstruction is the XMT-style model: multiple instructions per
	// step, no lockstep between flows.
	MultiInstruction = variant.MultiInstruction
	// SingleOperation is the classic interleaved ESM (SB-PRAM, ECLIPSE).
	SingleOperation = variant.SingleOperation
	// ConfigurableSingleOperation is the original PRAM-NUMA model
	// (TOTAL ECLIPSE).
	ConfigurableSingleOperation = variant.ConfigurableSingleOperation
	// FixedThickness is the vector/SIMD reduction of the model.
	FixedThickness = variant.FixedThickness
)

// Variants lists all execution variants.
func Variants() []Variant { return variant.Kinds() }

// Policy is the pluggable execution discipline of a variant: its step shape
// (lockstep, window, budget, fetch discipline), boot population, and the
// Table 1 task-switch/flow-branch cost rates the staged engine charges.
type Policy = variant.Policy

// StepShape describes how a policy shapes one machine step.
type StepShape = variant.StepShape

// MachineShape is the configuration slice a policy consults.
type MachineShape = variant.MachineShape

// PolicyFor resolves the registered execution policy of a variant.
func PolicyFor(v Variant) (Policy, error) { return variant.PolicyFor(v) }

// Stage identifies one stage of the Figure 13 execution pipeline
// (frontend, operation generation, memory resolution, commit).
type Stage = machine.Stage

// The pipeline stages, in execution order.
const (
	StageFrontend = machine.StageFrontend
	StageOpGen    = machine.StageOpGen
	StageMemory   = machine.StageMemory
	StageCommit   = machine.StageCommit
)

// StageStats is the per-stage cost attribution (see Stats.Stages for the
// cumulative per-run view and Config.StageObserver for per-step streaming).
type StageStats = machine.StageStats

// StageObserver receives per-step, per-stage cost deltas from the staged
// engine; install via Config.StageObserver.
type StageObserver = machine.StageObserver

// StageCollector is a ready-made StageObserver accumulating stage totals.
type StageCollector = trace.StageCollector

// ParseVariant resolves a variant name ("tcf", "xmt", "esm", "pram-numa",
// "simd", "balanced", or the full names).
func ParseVariant(s string) (Variant, error) { return variant.ParseKind(s) }

// Config describes a machine instance; see DefaultConfig for a ready-made
// one.
type Config = machine.Config

// Backend selects the step-engine execution strategy (Config.Backend): the
// reference interpreter, or the fused-block compiled backend that runs
// straight-line tcf-e instruction runs as precompiled Go closures. The two
// are bit-identical on every program; the interpreter is the oracle.
type Backend = machine.Backend

const (
	// BackendInterp is the reference interpreter (the default).
	BackendInterp = machine.BackendInterp
	// BackendFused runs fuse-compiled kernels and bulk memory fast paths.
	BackendFused = machine.BackendFused
)

// ParseBackend resolves a backend name ("interp" or "fused"; "" means
// interp).
func ParseBackend(s string) (Backend, error) { return machine.ParseBackend(s) }

// Sched selects the step scheduler (Config.Sched): the global-lockstep step
// loop, or the dataflow scheduler that lets TCF groups run ahead
// independently and synchronize only at actual shared-memory dependency
// edges. The two are bit-identical on every program — outputs, memory,
// statistics, traces and checkpoints; the lockstep engine is the oracle.
type Sched = machine.Sched

const (
	// SchedLockstep advances every group in global lockstep (the default).
	SchedLockstep = machine.SchedLockstep
	// SchedDataflow runs one generator goroutine per group, committing
	// results in deterministic lockstep order.
	SchedDataflow = machine.SchedDataflow
)

// ParseSched resolves a scheduler name ("lockstep" or "dataflow"; "" means
// lockstep).
func ParseSched(s string) (Sched, error) { return machine.ParseSched(s) }

// FaultPlan is a deterministic, seeded fault schedule for Config.FaultPlan:
// reference loss with retransmission, route detours, and memory-module
// fail-stop with spare failover. Recoverable plans change cycle counts only;
// results are identical to the fault-free run.
type FaultPlan = fault.Plan

// FaultInterval is a half-open activity window of a fault.
type FaultInterval = fault.Interval

// RandomFaultPlan builds a recoverable fault plan for a machine with the
// given group count, deterministic in seed.
func RandomFaultPlan(seed int64, groups int) *FaultPlan {
	return fault.Random(seed, groups, groups)
}

// The error taxonomy of Run/RunContext. Abnormal stops wrap exactly one of
// these; dispatch with errors.Is.
var (
	ErrDeadlock            = machine.ErrDeadlock
	ErrMaxSteps            = machine.ErrMaxSteps
	ErrCanceled            = machine.ErrCanceled
	ErrFaultUnrecoverable  = machine.ErrFaultUnrecoverable
	ErrDisciplineViolation = machine.ErrDisciplineViolation
	ErrThicknessLimit      = machine.ErrThicknessLimit
)

// Discipline selects the PRAM memory discipline checked by the tcfvet
// static analyzer (Vet) and the runtime cross-checker
// (Config.MemDiscipline).
type Discipline = mem.Discipline

// The memory disciplines. Off and CRCW check nothing: arbitrary concurrent
// reads and writes are the model's native semantics.
const (
	DisciplineOff  = mem.DisciplineOff
	DisciplineEREW = mem.DisciplineEREW
	DisciplineCREW = mem.DisciplineCREW
	DisciplineCRCW = mem.DisciplineCRCW
)

// ParseDiscipline resolves a discipline name ("erew", "crew", "crcw",
// "off"/"none"/"").
func ParseDiscipline(s string) (Discipline, error) { return mem.ParseDiscipline(s) }

// DisciplineViolation is the runtime cross-checker's report: the first
// same-step conflict observed, with step, address and both accesses. Runs
// stopped by it return an error unwrapping to ErrDisciplineViolation;
// recover the report with errors.As.
type DisciplineViolation = machine.DisciplineViolation

// DiscAccess is one side of a DisciplineViolation.
type DiscAccess = machine.DiscAccess

// Diagnostic is one position-carrying finding of the tcfvet static
// analyzer.
type Diagnostic = diag.Diagnostic

// VetOptions configures a Vet run.
type VetOptions struct {
	// Discipline is the memory model checked (default CREW; Off and CRCW
	// run the hygiene checks only).
	Discipline Discipline
	// Variant is the execution variant assumed for variant-sensitive
	// checks. The zero value is the single-instruction TCF variant.
	Variant Variant
}

// Vet statically analyzes tcf-e source: memory-discipline conformance
// under the selected PRAM model plus flow hygiene (unreachable code, dead
// stores, zero thickness, barriers inside parallel arms, constant
// out-of-range indices, overlapping @ placements). Parse and sema failures
// come back as a single diagnostic rather than an error.
func Vet(name, src string, opts VetOptions) []Diagnostic {
	return analysis.AnalyzeSource(name, src, analysis.Options{
		Discipline: opts.Discipline,
		Variant:    opts.Variant,
	})
}

// RenderDiagnostics formats findings one per line, in sorted order, in the
// "file:line:col: severity: message [check]" form.
func RenderDiagnostics(ds []Diagnostic) string { return diag.Render(ds) }

// DiagnosticsHaveErrors reports whether any finding has error severity.
func DiagnosticsHaveErrors(ds []Diagnostic) bool { return diag.HasErrors(ds) }

// CostReport is the static cost analyzer's prediction for one program on
// one machine shape: predicted step/cycle/traffic bounds under the extended
// PRAM-NUMA cost model, shared-memory footprint, and the group-independence
// verdict the dataflow scheduler consumes. When Resolved is true every
// bound is exact and equals the measured Stats of a real run (on either
// backend, under either scheduler).
type CostReport = analysis.CostReport

// CostBound is one predicted [Min, Max] interval of a CostReport.
type CostBound = analysis.Bound

// CostParams describes the machine a cost prediction is for plus the
// analysis budgets.
type CostParams = analysis.CostParams

// CostParamsFor derives cost-prediction parameters from a machine Config,
// so a prediction and a run describe the same machine shape. Analysis
// budgets stay at their defaults.
func CostParamsFor(cfg Config) CostParams {
	return CostParams{
		Variant:        cfg.Variant,
		Groups:         cfg.Groups,
		ProcsPerGroup:  cfg.ProcsPerGroup,
		SharedWords:    cfg.SharedWords,
		LocalWords:     cfg.LocalWords,
		PipelineDepth:  cfg.PipelineDepth,
		MemLatencyBase: cfg.MemLatencyBase,
		VectorWidth:    cfg.VectorWidth,
		MaxThickness:   cfg.MaxThickness,
		Topology:       cfg.Topology,
	}
}

// PredictCost statically predicts the cost of tcf-e source on the machine
// cfg describes, without building a machine.
func PredictCost(name, src string, cfg Config) (*CostReport, error) {
	return analysis.CostSource(name, src, CostParamsFor(cfg))
}

// PredictCost predicts the cost of the loaded program on this machine's
// configuration. The machine must have a program loaded and not yet run
// (the prediction itself never mutates the machine, so calling it after a
// run is also fine).
func (m *Machine) PredictCost() (*CostReport, error) {
	if m.compiled == nil || m.compiled.Program == nil {
		return nil, fmt.Errorf("tcfpram: no program loaded")
	}
	return analysis.Cost(m.compiled, CostParamsFor(m.inner.Config())), nil
}

// PredictionTable renders a predicted-vs-measured comparison, one row per
// statistic: the predicted bound, the measured value, and — for exact
// predictions — the signed relative error. st may be nil (prediction only,
// e.g. when the run aborted before producing stats).
func PredictionTable(rep *CostReport, st *Stats) string {
	if rep == nil {
		return ""
	}
	if st == nil {
		return rep.Render()
	}
	rows := []struct {
		name      string
		predicted CostBound
		measured  int64
	}{
		{"steps", rep.Steps, st.Steps},
		{"cycles", rep.Cycles, st.Cycles},
		{"ops", rep.Ops, st.Ops},
		{"scalar-ops", rep.ScalarOps, st.ScalarOps},
		{"instr-fetches", rep.InstrFetches, st.InstrFetches},
		{"shared-reads", rep.SharedReads, st.SharedReads},
		{"shared-writes", rep.SharedWrites, st.SharedWrites},
		{"local-reads", rep.LocalReads, st.LocalReads},
		{"local-writes", rep.LocalWrites, st.LocalWrites},
		{"multiop-refs", rep.MultiopRefs, st.MultiopRefs},
		{"overhead-cycles", rep.OverheadCycles, st.OverheadCycles},
		{"stall-cycles", rep.StallCycles, st.StallCycles},
		{"flow-branch-cycles", rep.FlowBranchCycles, st.FlowBranchCycles},
		{"task-switch-cycles", rep.TaskSwitchCycles, st.TaskSwitchCycles},
		{"barriers", rep.Barriers, st.Barriers},
		{"splits", rep.Splits, st.Splits},
		{"joins", rep.Joins, st.Joins},
		{"flows-created", rep.FlowsCreated, st.FlowsCreated},
		{"max-live-flows", rep.MaxLiveFlows, int64(st.MaxLiveFlows)},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "prediction for %s (%s)", rep.Program, rep.Variant)
	if !rep.Resolved {
		fmt.Fprintf(&b, " — lower bounds only: %s", rep.Reason)
	}
	if rep.Note != "" {
		fmt.Fprintf(&b, " — %s", rep.Note)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-20s %12s %12s %10s\n", "stat", "predicted", "measured", "error")
	for _, r := range rows {
		errCol := "-"
		switch {
		case r.predicted.Exact():
			d := r.predicted.Min - r.measured
			switch {
			case d == 0:
				errCol = "0%"
			case r.measured == 0:
				errCol = "inf"
			default:
				errCol = fmt.Sprintf("%+.1f%%", 100*float64(d)/float64(r.measured))
			}
		case r.predicted.Min > r.measured:
			// A sound lower bound can never exceed the measurement.
			errCol = "BOUND VIOLATED"
		}
		fmt.Fprintf(&b, "  %-20s %12s %12d %10s\n", r.name, r.predicted, r.measured, errCol)
	}
	return b.String()
}

// Stats are the measured execution statistics.
type Stats = machine.Stats

// Output is one print record.
type Output = machine.Output

// DefaultConfig returns the small reference configuration for a variant
// (P=4 groups of Tp=4 TCF processors; 1 group for FixedThickness).
func DefaultConfig(v Variant) Config { return machine.Default(v) }

// Machine is a ready-to-run TCF machine with a loaded program.
type Machine struct {
	inner    *machine.Machine
	compiled *codegen.Compiled
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{inner: m}, nil
}

// LoadSource compiles tcf-e source and loads it (including initialized
// shared and local data).
func (m *Machine) LoadSource(name, src string) error {
	c, err := codegen.CompileSource(name, src)
	if err != nil {
		return err
	}
	if err := m.inner.LoadProgram(c.Program); err != nil {
		return err
	}
	for _, seg := range c.LocalData {
		for g := 0; g < m.inner.Config().Groups; g++ {
			if err := m.inner.LocalMem(g).Load(seg.Addr, seg.Words); err != nil {
				return err
			}
		}
	}
	m.compiled = c
	return nil
}

// LoadAssembly assembles TCF assembler source and loads it.
func (m *Machine) LoadAssembly(name, src string) error {
	p, err := isa.Assemble(name, src)
	if err != nil {
		return err
	}
	if err := m.inner.LoadProgram(p); err != nil {
		return err
	}
	// Assembly carries no local-data segments, so the bare program is a
	// complete unit for cost prediction too.
	m.compiled = &codegen.Compiled{Program: p}
	return nil
}

// LoadBinary loads a TCFB object (produced by cmd/tcfas or isa.Encode).
func (m *Machine) LoadBinary(data []byte) error {
	p, err := isa.Decode(data)
	if err != nil {
		return err
	}
	if err := m.inner.LoadProgram(p); err != nil {
		return err
	}
	m.compiled = &codegen.Compiled{Program: p}
	return nil
}

// Reset returns the machine to its just-built state while keeping its
// internal arenas, so it can be reused for another program: the next
// LoadSource/Run is bit-identical to the same run on a fresh machine with
// the same Config. Previously returned Stats, Outputs and traces are
// invalidated.
func (m *Machine) Reset() {
	m.inner.Reset()
	m.compiled = nil
}

// SetLimits adjusts the per-run governance bounds (MaxSteps, MaxThickness)
// of an un-booted or freshly Reset machine — the quota hook of pooled,
// multi-tenant execution. maxSteps <= 0 selects the default bound;
// maxThickness 0 disables the thickness quota.
func (m *Machine) SetLimits(maxSteps int64, maxThickness int) error {
	return m.inner.SetLimits(maxSteps, maxThickness)
}

// CheckpointSink receives periodic machine snapshots from a checkpointing
// run (Config.CheckpointEvery / SetCheckpointing).
type CheckpointSink = machine.CheckpointSink

// FileCheckpointSink is a CheckpointSink writing each snapshot atomically
// (temp file + fsync + rename) to a fixed path; the file always holds the
// latest complete checkpoint. Zero value is not usable — set Path.
type FileCheckpointSink = checkpoint.FileSink

// Snapshot serializes the complete machine state — program, memories, flows,
// storage buffers, statistics and accumulated output — as a versioned,
// checksummed binary stream. Snapshots are only well-defined at step
// boundaries (between Step calls, or after Run returns); a machine stopped
// by a runtime error refuses to snapshot.
func (m *Machine) Snapshot(w io.Writer) error { return m.inner.Snapshot(w) }

// SetCheckpointing wires periodic checkpointing onto an un-booted or freshly
// Reset machine: every `every` steps the sink receives a complete snapshot.
// every=0 (or a nil sink) disables. Checkpointing never changes results.
func (m *Machine) SetCheckpointing(every int64, sink CheckpointSink) error {
	return m.inner.SetCheckpointing(every, sink)
}

// RestoreMachine rebuilds a machine from a Snapshot stream and the same
// behavior-relevant Config the snapshot was taken with (mismatches are
// rejected with an error naming the field). The program is embedded in the
// snapshot, so the restored machine is immediately runnable — Run continues
// from the checkpointed step and is bit-identical to the uninterrupted run.
// Source-level symbol lookups (Array, Global) are unavailable on a restored
// machine; raw Words access works as usual.
func RestoreMachine(r io.Reader, cfg Config) (*Machine, error) {
	inner, err := machine.Restore(r, cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{inner: inner}, nil
}

// Run executes the program to completion and returns the statistics.
func (m *Machine) Run() (*Stats, error) { return m.inner.Run() }

// RunContext is Run with cooperative cancellation: the context is checked
// between machine steps, and a canceled run stops promptly with an error
// wrapping ErrCanceled.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) { return m.inner.RunContext(ctx) }

// Step advances one synchronous machine step (Boot is implicit on first
// use via Run; call Boot explicitly when stepping manually).
func (m *Machine) Step() error { return m.inner.Step() }

// Boot creates the initial flow population for the variant.
func (m *Machine) Boot() error { return m.inner.Boot() }

// Done reports whether every flow has terminated.
func (m *Machine) Done() bool { return m.inner.Done() }

// Stats returns the statistics accumulated so far.
func (m *Machine) Stats() *Stats { return m.inner.Stats() }

// Outputs returns the print records in deterministic order.
func (m *Machine) Outputs() []Output { return m.inner.Outputs() }

// PrintedValues flattens all PRINT outputs into one slice.
func (m *Machine) PrintedValues() []int64 {
	var out []int64
	for _, o := range m.inner.Outputs() {
		out = append(out, o.Values...)
	}
	return out
}

// Words reads n shared-memory words starting at addr.
func (m *Machine) Words(addr int64, n int) []int64 { return m.inner.Shared().Snapshot(addr, n) }

// Word reads one shared-memory word.
func (m *Machine) Word(addr int64) int64 { return m.inner.Shared().Peek(addr) }

// SetWords preloads shared memory (workload inputs).
func (m *Machine) SetWords(addr int64, words []int64) error {
	return m.inner.Shared().Load(addr, words)
}

// Array reads a named global array of the loaded tcf-e program.
func (m *Machine) Array(name string) ([]int64, error) {
	sym, err := m.symbol(name)
	if err != nil {
		return nil, err
	}
	if sym.ArrayLen < 0 {
		return nil, fmt.Errorf("tcfpram: %s is not an array", name)
	}
	return m.Words(sym.Addr, sym.ArrayLen), nil
}

// Global reads a named global scalar of the loaded tcf-e program.
func (m *Machine) Global(name string) (int64, error) {
	sym, err := m.symbol(name)
	if err != nil {
		return 0, err
	}
	if sym.ArrayLen >= 0 {
		return 0, fmt.Errorf("tcfpram: %s is an array; use Array", name)
	}
	return m.Word(sym.Addr), nil
}

func (m *Machine) symbol(name string) (sym symInfo, err error) {
	if m.compiled == nil {
		return sym, fmt.Errorf("tcfpram: no tcf-e program loaded")
	}
	for _, d := range m.compiled.Info.Prog.Globals {
		if d.Name == name {
			s := m.compiled.Info.Syms[d]
			return symInfo{Addr: s.Addr, ArrayLen: s.ArrayLen}, nil
		}
	}
	return sym, fmt.Errorf("tcfpram: no global named %s", name)
}

type symInfo struct {
	Addr     int64
	ArrayLen int
}

// StageTable renders the cumulative Figure 13 per-stage cost attribution of
// the run so far (always available; no tracing required).
func (m *Machine) StageTable() string { return trace.StageTable(m.inner.Stats()) }

// Timeline renders the step/slice schedule (requires Config.TraceEnabled).
func (m *Machine) Timeline() string { return trace.Timeline(m.inner) }

// Gantt renders the per-group occupancy schedule (requires
// Config.TraceEnabled).
func (m *Machine) Gantt() string { return trace.Gantt(m.inner) }

// TraceCSV exports the execution trace as CSV (requires
// Config.TraceEnabled).
func (m *Machine) TraceCSV() string { return trace.CSV(m.inner) }

// TraceSVG renders the schedule as an SVG document in the style of the
// paper's execution figures (requires Config.TraceEnabled).
func (m *Machine) TraceSVG() string { return trace.SVG(m.inner) }

// Disassembly renders the loaded program.
func (m *Machine) Disassembly() string {
	if p := m.inner.Program(); p != nil {
		return p.Listing()
	}
	return ""
}

// RunSource compiles and runs tcf-e source on a fresh machine with cfg,
// returning the machine for inspection.
func RunSource(cfg Config, name, src string) (*Machine, *Stats, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := m.LoadSource(name, src); err != nil {
		return nil, nil, err
	}
	stats, err := m.Run()
	if err != nil {
		return m, stats, err
	}
	return m, stats, nil
}

// RunAssembly assembles and runs TCF assembler source on a fresh machine.
func RunAssembly(cfg Config, name, src string) (*Machine, *Stats, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := m.LoadAssembly(name, src); err != nil {
		return nil, nil, err
	}
	stats, err := m.Run()
	if err != nil {
		return m, stats, err
	}
	return m, stats, nil
}

// EncodeProgram serializes the currently loaded program to the TCFB object
// format (the inverse of LoadBinary).
func (m *Machine) EncodeProgram() ([]byte, error) {
	p := m.inner.Program()
	if p == nil {
		return nil, fmt.Errorf("tcfpram: no program loaded")
	}
	return isa.Encode(p), nil
}
