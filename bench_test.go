package tcfpram

// The benchmark harness regenerates every table and figure of the paper:
// run `go test -bench=. -benchmem` and see EXPERIMENTS.md for the recorded
// shapes. Each benchmark reports domain metrics (cycles, steps, fetches of
// the simulated machine) beside Go's timing so the paper's comparisons can
// be read directly from the benchmark output.

import (
	"fmt"
	"os"
	"testing"

	"tcfpram/internal/exper"
	"tcfpram/internal/machine"
	"tcfpram/internal/network"
	"tcfpram/internal/variant"
	"tcfpram/internal/workload"
)

// benchBackend is the execution backend the whole benchmark run uses,
// selected by the TCFPRAM_BACKEND environment variable ("interp" when unset,
// "fused" for the compiled backend). Selecting via the environment instead of
// sub-benchmarks keeps benchmark names identical across recorded labels, so
// `benchjson -compare` lines up interp and fused runs name for name.
var benchBackend = func() machine.Backend {
	b, err := machine.ParseBackend(os.Getenv("TCFPRAM_BACKEND"))
	if err != nil {
		panic("TCFPRAM_BACKEND: " + err.Error())
	}
	return b
}()

// benchSched is the step scheduler the whole benchmark run uses, selected by
// the TCFPRAM_SCHED environment variable ("lockstep" when unset, "dataflow"
// for the group run-ahead scheduler) — the same keep-names-identical pattern
// as TCFPRAM_BACKEND, so scheduler runs line up in `benchjson -compare`.
var benchSched = func() machine.Sched {
	s, err := machine.ParseSched(os.Getenv("TCFPRAM_SCHED"))
	if err != nil {
		panic("TCFPRAM_SCHED: " + err.Error())
	}
	return s
}()

// withBackend layers the selected backend and scheduler under a benchmark's
// own tweak.
func withBackend(tweak func(*machine.Config)) func(*machine.Config) {
	return func(c *machine.Config) {
		c.Backend = benchBackend
		c.Sched = benchSched
		if tweak != nil {
			tweak(c)
		}
	}
}

// report attaches simulated-machine metrics to the benchmark result.
func report(b *testing.B, m *machine.Machine) {
	b.Helper()
	s := m.Stats()
	b.ReportMetric(float64(s.Cycles), "cycles")
	b.ReportMetric(float64(s.Steps), "steps")
	b.ReportMetric(float64(s.InstrFetches), "fetches")
	b.ReportMetric(s.Utilization(), "util")
}

func benchWorkload(b *testing.B, kind variant.Kind, w workload.Workload, tweak func(*machine.Config)) {
	b.Helper()
	b.ReportAllocs()
	var last *machine.Machine
	for i := 0; i < b.N; i++ {
		last = exper.MustRun(kind, w, withBackend(tweak))
	}
	report(b, last)
}

// ---- Table 1 ----

func BenchmarkTable1_Measure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Table1(8, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_TaskSwitch(b *testing.B) {
	benchWorkload(b, variant.SingleInstruction, workload.Multitask(48, 4), nil)
}

func BenchmarkTable1_FlowBranch(b *testing.B) {
	benchWorkload(b, variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, 16), nil)
}

// ---- Figure 1: network substrate ----

func BenchmarkFig1_NetworkRandomTraffic(b *testing.B) {
	for _, side := range []int{4, 8} {
		b.Run(fmt.Sprintf("mesh%dx%d", side, side), func(b *testing.B) {
			var last network.Stats
			for i := 0; i < b.N; i++ {
				s, err := network.RandomTraffic(network.Config{
					Kind: network.Mesh2D, Width: side, Height: side, LinkCapacity: 2,
				}, 8, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.ReportMetric(last.AvgLatency, "netlat")
			b.ReportMetric(last.Throughput, "netthru")
		})
	}
}

// ---- Figure 2: NUMA bunching ----

func BenchmarkFig2_NUMABunchSpeedup(b *testing.B) {
	for _, bunch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("bunch%d", bunch), func(b *testing.B) {
			benchWorkload(b, variant.SingleInstruction, workload.LowTLP(128, bunch), nil)
		})
	}
}

// ---- Figures 3/4: TCF structure ----

func BenchmarkFig34_BlockStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := exper.Fig34(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 6-9: execution schedules ----

func BenchmarkFig6_SliceInterleaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_SingleInstruction(b *testing.B) {
	var last *exper.FigScheduleResult
	for i := 0; i < b.N; i++ {
		r, err := exper.FigSchedule(variant.SingleInstruction, withBackend(nil))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Steps), "steps")
	b.ReportMetric(float64(last.MaxStepOps), "maxstepops")
}

func BenchmarkFig8_Balanced(b *testing.B) {
	var last *exper.FigScheduleResult
	for i := 0; i < b.N; i++ {
		r, err := exper.FigSchedule(variant.Balanced, withBackend(nil))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Steps), "steps")
	b.ReportMetric(float64(last.MaxStepOps), "maxstepops")
}

func BenchmarkFig9_MultiInstruction(b *testing.B) {
	var last *exper.FigScheduleResult
	for i := 0; i < b.N; i++ {
		r, err := exper.FigSchedule(variant.MultiInstruction, withBackend(nil))
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Steps), "steps")
}

// ---- Figures 10/11: low-TLP utilization ----

func BenchmarkFig10_SingleOperation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig1011(64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_ConfigurableSingleOp(b *testing.B) {
	benchWorkload(b, variant.ConfigurableSingleOperation, workload.LowTLP(64, 4), nil)
}

// ---- Figure 12: SIMD reduction ----

func BenchmarkFig12_FixedThickness(b *testing.B) {
	benchWorkload(b, variant.FixedThickness, workload.ConditionalHalves(workload.StyleSIMD, 16),
		func(c *machine.Config) {
			c.ProcsPerGroup = 16
			c.VectorWidth = 16
		})
}

// ---- Figure 13: fetch amortization ----

func BenchmarkFig13_FetchAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Section 4 programming comparisons ----

func BenchmarkS4a_VectorAdd(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("tcf/%d", size), func(b *testing.B) {
			benchWorkload(b, variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, size, 0, 0), nil)
		})
		b.Run(fmt.Sprintf("threadloop/%d", size), func(b *testing.B) {
			benchWorkload(b, variant.SingleOperation, workload.VectorAdd(workload.StyleThread, size, 16, 0), nil)
		})
	}
}

func BenchmarkS4b_SmallVector(b *testing.B) {
	b.Run("tcf", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.VectorAdd(workload.StyleTCF, 5, 0, 0), nil)
	})
	b.Run("threadguard", func(b *testing.B) {
		benchWorkload(b, variant.SingleOperation, workload.VectorAdd(workload.StyleThread, 5, 16, 0), nil)
	})
}

func BenchmarkS4c_LowTLP(b *testing.B) {
	b.Run("pram-thick1", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.LowTLP(128, 0), nil)
	})
	b.Run("numa-bunch8", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.LowTLP(128, 8), nil)
	})
}

func BenchmarkS4d_Conditional(b *testing.B) {
	b.Run("tcf-parallel", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.ConditionalHalves(workload.StyleTCF, 16), nil)
	})
	b.Run("thread-if", func(b *testing.B) {
		benchWorkload(b, variant.SingleOperation, workload.ConditionalHalves(workload.StyleThread, 16), nil)
	})
	b.Run("simd-predicated", func(b *testing.B) {
		benchWorkload(b, variant.FixedThickness, workload.ConditionalHalves(workload.StyleSIMD, 16),
			func(c *machine.Config) {
				c.ProcsPerGroup = 16
				c.VectorWidth = 16
			})
	})
}

func BenchmarkS4e_Prefix(b *testing.B) {
	b.Run("tcf", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.PrefixSum(workload.StyleTCF, 128, 0), nil)
	})
	b.Run("threadloop", func(b *testing.B) {
		benchWorkload(b, variant.SingleOperation, workload.PrefixSum(workload.StyleThread, 128, 16), nil)
	})
}

func BenchmarkS4f_DependentLoop(b *testing.B) {
	b.Run("tcf-lockstep", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.DependentLoop(workload.StyleTCF, 16), nil)
	})
	b.Run("fork-lockstep", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.DependentLoop(workload.StyleFork, 16), nil)
	})
	b.Run("fork-xmt", func(b *testing.B) {
		benchWorkload(b, variant.MultiInstruction, workload.DependentLoop(workload.StyleFork, 16), nil)
	})
	b.Run("thread-lockstep", func(b *testing.B) {
		benchWorkload(b, variant.SingleOperation, workload.DependentLoop(workload.StyleThread, 16), nil)
	})
}

func BenchmarkS4g_Multitask(b *testing.B) {
	for _, tasks := range []int{16, 48} {
		b.Run(fmt.Sprintf("tasks%d", tasks), func(b *testing.B) {
			benchWorkload(b, variant.SingleInstruction, workload.Multitask(tasks, 4), nil)
		})
	}
}

func BenchmarkS4h_Allocation(b *testing.B) {
	b.Run("vertical", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.Allocation(64, 1, 16), nil)
	})
	b.Run("horizontal", func(b *testing.B) {
		benchWorkload(b, variant.SingleInstruction, workload.Allocation(64, 4, 16), nil)
	})
}

// ---- Engine throughput (simulator performance, not paper claims) ----

// BenchmarkEngine_StepThroughput measures the step engines on a workload
// where scaling is actually possible: eight independent TCFs spread across
// the groups, each looping over its own memory slice (the old single-flow
// vector add occupied one group, so the parallel engine had nothing to
// overlap). The serial sub-benchmark is the baseline; the engine variants
// report their serial-vs-X speedup as a metric.
func BenchmarkEngine_StepThroughput(b *testing.B) {
	w := workload.GroupParallel(8, 512, 100)
	var serialNs float64
	cases := []struct {
		name  string
		tweak func(*machine.Config)
	}{
		{"serial", nil},
		{"parallel", func(c *machine.Config) { c.Parallel = true }},
		{"dataflow", func(c *machine.Config) { c.Sched = machine.SchedDataflow }},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			benchWorkload(b, variant.SingleInstruction, w, tc.tweak)
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if tc.name == "serial" {
				serialNs = ns
			} else if serialNs > 0 {
				b.ReportMetric(serialNs/ns, "speedup")
			}
		})
	}
}

// BenchmarkEngine_StepLoop measures the steady-state cost of one machine
// step on a long-lived machine (construction excluded): a thick loop body
// that stores every iteration. With tracing disabled this must run at
// zero allocations per step — the arenas absorb all step-local state. Both
// backends are measured explicitly (and both are gated at zero allocations);
// this is the one benchmark that ignores TCFPRAM_BACKEND.
func BenchmarkEngine_StepLoop(b *testing.B) {
	src := `
shared int c[64] @ 300;
func main() {
    #64;
    for (int i = 0; i < 1000000000; i += 1) {
        c[tid] = c[tid] + i;
    }
}
`
	for _, backend := range []machine.Backend{machine.BackendInterp, machine.BackendFused} {
		b.Run(backend.String(), func(b *testing.B) {
			cfg := DefaultConfig(SingleInstruction)
			cfg.Backend = backend
			m, err := NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.LoadSource("bench", src); err != nil {
				b.Fatal(err)
			}
			if err := m.Boot(); err != nil {
				b.Fatal(err)
			}
			// Warm the arenas past their high-water mark before measuring.
			for i := 0; i < 64; i++ {
				if err := m.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngine_CompileTCFE(b *testing.B) {
	src := `
shared int a[64] @ 100;
shared int c[64] @ 300;
func main() {
    #64;
    for (int i = 0; i < 4; i += 1) {
        c[tid] = a[tid] * 3 + c[tid];
    }
    parallel {
        #32: c[tid] += 1;
        #32: c[tid + 32] += 2;
    }
}
`
	m, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		b.Fatal(err)
	}
	_ = m
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mm, err := NewMachine(DefaultConfig(SingleInstruction))
		if err != nil {
			b.Fatal(err)
		}
		if err := mm.LoadSource("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_TrafficPatterns exercises the classic NoC patterns on the
// torus (the adversarial complements of uniform random traffic).
func BenchmarkFig1_TrafficPatterns(b *testing.B) {
	for _, p := range network.Patterns() {
		b.Run(p.String(), func(b *testing.B) {
			var last network.Stats
			for i := 0; i < b.N; i++ {
				s, err := network.PatternTraffic(network.Config{
					Kind: network.Torus2D, Width: 8, Height: 8, LinkCapacity: 2,
				}, p, 8)
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.ReportMetric(last.AvgLatency, "netlat")
			b.ReportMetric(last.AvgHops, "nethops")
		})
	}
}

// BenchmarkScaling sweeps the machine size for a fixed parallel workload.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exper.Scaling(256, 6); err != nil {
			b.Fatal(err)
		}
	}
}
