package tcfpram

import (
	"context"
	"errors"
	"fmt"
	"time"

	"strings"
	"testing"
)

const addSrc = `
shared int a[8] @ 100 = {1, 2, 3, 4, 5, 6, 7, 8};
shared int c[8] @ 300;
shared int total;

func main() {
    #8;
    c[tid] = a[tid] * 10;
    total = radd(a[tid]);
}
`

func TestRunSourceQuickstart(t *testing.T) {
	m, stats, err := RunSource(DefaultConfig(SingleInstruction), "add", addSrc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Array("c")
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != int64((i+1)*10) {
			t.Fatalf("c = %v", got)
		}
	}
	total, err := m.Global("total")
	if err != nil {
		t.Fatal(err)
	}
	if total != 36 {
		t.Fatalf("total = %d", total)
	}
	if stats.Cycles == 0 || stats.Steps == 0 {
		t.Fatal("empty stats")
	}
}

func TestRunOnEveryVariant(t *testing.T) {
	// A variant-portable program: plain sequential scalar code.
	src := `
func main() {
    int x = 0;
    for (int i = 1; i <= 10; i += 1) {
        x += i;
    }
    print(x);
}
`
	for _, v := range Variants() {
		t.Run(v.String(), func(t *testing.T) {
			m, _, err := RunSource(DefaultConfig(v), "seq", src)
			if err != nil {
				t.Fatal(err)
			}
			vals := m.PrintedValues()
			if len(vals) == 0 || vals[0] != 55 {
				t.Fatalf("printed %v, want 55 first", vals)
			}
		})
	}
}

func TestRunAssembly(t *testing.T) {
	src := `
main:
    LDI S0, 4
    SETTHICK S0
    TID V0
    MUL V1, V0, V0
    ST V0+500, V1
    HALT
`
	m, _, err := RunAssembly(DefaultConfig(SingleInstruction), "squares", src)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Words(500, 4)
	for i := int64(0); i < 4; i++ {
		if got[i] != i*i {
			t.Fatalf("squares = %v", got)
		}
	}
}

func TestParseVariant(t *testing.T) {
	for _, v := range Variants() {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestManualStepping(t *testing.T) {
	m, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadSource("s", "func main() { print(1); }"); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !m.Done() && steps < 100 {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if got := m.PrintedValues(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("printed %v", got)
	}
}

func TestTraceRendering(t *testing.T) {
	cfg := DefaultConfig(SingleInstruction)
	cfg.TraceEnabled = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadSource("t", addSrc); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Timeline(), "step") {
		t.Fatal("timeline empty")
	}
	if m.Gantt() == "" || !strings.HasPrefix(m.TraceCSV(), "step,") {
		t.Fatal("trace renderers empty")
	}
	if !strings.Contains(m.Disassembly(), "SETTHICK") {
		t.Fatal("disassembly missing")
	}
}

func TestSymbolErrors(t *testing.T) {
	m, _, err := RunSource(DefaultConfig(SingleInstruction), "t", addSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Array("total"); err == nil {
		t.Fatal("Array on scalar should fail")
	}
	if _, err := m.Global("c"); err == nil {
		t.Fatal("Global on array should fail")
	}
	if _, err := m.Array("nope"); err == nil {
		t.Fatal("unknown symbol should fail")
	}
	m2, _ := NewMachine(DefaultConfig(SingleInstruction))
	if _, err := m2.Array("x"); err == nil {
		t.Fatal("Array without program should fail")
	}
}

func TestSetWords(t *testing.T) {
	m, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetWords(100, []int64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadSource("t", "shared int a[3] @ 100;\nfunc main() { print(a[0] + a[1] + a[2]); }"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.PrintedValues(); got[0] != 27 {
		t.Fatalf("printed %v", got)
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	m, _ := NewMachine(DefaultConfig(SingleInstruction))
	if err := m.LoadSource("bad", "func main() { x = 1; }"); err == nil {
		t.Fatal("expected compile error")
	}
	if err := m.LoadAssembly("bad", "FOO"); err == nil {
		t.Fatal("expected assembly error")
	}
}

func TestLoadBinaryRoundTrip(t *testing.T) {
	// Compile to a TCFB object via the internal encoder, then load it
	// through the public API.
	m1, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.LoadSource("t", "func main() { print(5 * 9); }"); err != nil {
		t.Fatal(err)
	}
	blob, err := m1.EncodeProgram()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadBinary(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m2.PrintedValues(); len(got) != 1 || got[0] != 45 {
		t.Fatalf("binary round trip printed %v", got)
	}
	if err := m2.LoadBinary([]byte("garbage")); err == nil {
		t.Fatal("garbage object accepted")
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	if _, err := NewMachine(Config{Variant: SingleInstruction, Groups: -1}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, _, err := RunSource(Config{Variant: SingleInstruction, Groups: -1}, "x", "func main() { }"); err == nil {
		t.Fatal("RunSource with bad config accepted")
	}
	if _, _, err := RunSource(DefaultConfig(SingleInstruction), "x", "not a program"); err == nil {
		t.Fatal("RunSource with bad source accepted")
	}
	if _, _, err := RunAssembly(Config{Variant: SingleInstruction, Groups: -1}, "x", "HALT"); err == nil {
		t.Fatal("RunAssembly with bad config accepted")
	}
	if _, _, err := RunAssembly(DefaultConfig(SingleInstruction), "x", "FOO"); err == nil {
		t.Fatal("RunAssembly with bad source accepted")
	}
	// Runtime error surfaces through RunSource.
	if _, _, err := RunSource(DefaultConfig(FixedThickness), "x", "func main() { #4; }"); err == nil {
		t.Fatal("runtime error swallowed")
	}
	m, _ := NewMachine(DefaultConfig(SingleInstruction))
	if _, err := m.EncodeProgram(); err == nil {
		t.Fatal("EncodeProgram without a program accepted")
	}
	if m.Disassembly() != "" {
		t.Fatal("disassembly of empty machine")
	}
	if _, err := m.Global("x"); err == nil {
		t.Fatal("Global without program accepted")
	}
}

func TestRunContextCancellation(t *testing.T) {
	m, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAssembly("spin", "main:\n    JMP main\n"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = m.RunContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; run did not stop promptly", d)
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	m, err := NewMachine(DefaultConfig(SingleInstruction))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAssembly("spin", "main:\n    JMP main\n"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestFaultPlanPreservesResults(t *testing.T) {
	clean, cleanStats, err := RunSource(DefaultConfig(SingleInstruction), "add", addSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(SingleInstruction)
	cfg.FaultPlan = RandomFaultPlan(7, cfg.Groups)
	faulty, faultyStats, err := RunSource(cfg, "add", addSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := clean.Array("c")
	b, _ := faulty.Array("c")
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("faults changed results: %v vs %v", a, b)
	}
	if faultyStats.Cycles <= cleanStats.Cycles {
		t.Fatalf("recoverable faults should cost cycles: %d vs %d",
			faultyStats.Cycles, cleanStats.Cycles)
	}
}
