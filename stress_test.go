package tcfpram

// Scale stress: larger-than-default workloads end to end through the public
// API, skipped under -short.

import (
	"fmt"
	"sort"
	"testing"
)

func TestStressLargeVectorAdd(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 8192
	var b []byte
	b = append(b, []byte(fmt.Sprintf(`
shared int a[%d] @ 10000;
shared int c[%d] @ 30000;

func main() {
    #%d;
    c[tid] = a[tid] * 3 + 1;
}
`, n, n, n))...)
	cfg := DefaultConfig(SingleInstruction)
	cfg.SharedWords = 1 << 17
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i)
	}
	if err := m.SetWords(10000, in); err != nil {
		t.Fatal(err)
	}
	if err := m.LoadSource("big", string(b)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Array("c")
	for i := range got {
		if got[i] != int64(i)*3+1 {
			t.Fatalf("c[%d] = %d", i, got[i])
		}
	}
}

func TestStressSort64(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Odd-even transposition sort of 64 elements in tcf-e, on both the
	// single-instruction and balanced engines and with auto-splitting.
	src := `
shared int data[64] @ 10000;
shared int n @ 50 = 64;

func main() {
    int rounds = n;
    int half = n / 2;
    for (int r = 0; r < rounds; r += 1) {
        int offset = r % 2;
        #half;
        thick int i = tid * 2 + offset;
        thick int valid = i + 1 < n;
        thick int j = (i + 1) * valid;
        thick int x = data[i * valid];
        thick int y = data[j];
        thick int swap = (x > y) & valid;
        thick int lo = x + (y - x) * swap;
        thick int hi = y - (y - x) * swap;
        data[i * valid] = lo * valid + x * (1 - valid);
        data[j] = hi * valid + y * (1 - valid);
    }
}
`
	configs := []struct {
		name  string
		tweak func(*Config)
	}{
		{"single-instruction", nil},
		{"balanced-b4", func(c *Config) { c.Variant = Balanced; c.BalancedBound = 4 }},
		{"autosplit-8", func(c *Config) { c.AutoSplitThreshold = 8 }},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			cfg := DefaultConfig(SingleInstruction)
			if cc.tweak != nil {
				cc.tweak(&cfg)
			}
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			in := make([]int64, 64)
			for i := range in {
				in[i] = int64((i*37 + 11) % 101)
			}
			if err := m.SetWords(10000, in); err != nil {
				t.Fatal(err)
			}
			if err := m.LoadSource("sort", src); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			got, _ := m.Array("data")
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("not sorted: %v", got)
			}
			want := append([]int64(nil), in...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("element %d = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestStressManyFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 200 tasks across 16 slots exercise queueing and rotation at scale.
	var src []byte
	src = append(src, []byte("shared int out[200] @ 20000;\nfunc main() {\n    parallel {\n")...)
	for i := 0; i < 200; i++ {
		src = append(src, []byte("        #1: out[fid - 1] = fid;\n")...)
	}
	src = append(src, []byte("    }\n}\n")...)
	m, _, err := RunSource(DefaultConfig(SingleInstruction), "many", string(src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := m.Array("out")
	for i := range out {
		if out[i] != int64(i+1) {
			t.Fatalf("task %d wrote %d", i, out[i])
		}
	}
	if m.Stats().TaskSwitches == 0 {
		t.Fatal("no rotation at 200 tasks")
	}
}
